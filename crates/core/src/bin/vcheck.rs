//! `vcheck` — ValueCheck from the command line.
//!
//! ```text
//! Usage: vcheck <project-dir> [options]
//!
//!   <project-dir>        directory with *.c sources and, ideally, a
//!                        history.json (see vc_vcs::HistorySpec)
//!   --define SYM         enable a preprocessor symbol (repeatable)
//!   --all                keep non-cross-scope unused definitions too
//!   --no-rank            keep detection order instead of DOK ranking
//!   --no-prune           disable all pruning patterns
//!   --top N              print only the N highest-priority findings
//!   --json               emit findings as JSON instead of CSV
//!   --stats              print a metrics summary (funnel, fixpoint counters,
//!                        histograms, harden.* degradations) to stderr
//!   --metrics-json FILE  write the full metrics snapshot as JSON
//!   --trace FILE         write a Chrome trace_event file of the pipeline
//!                        spans (open in chrome://tracing or Perfetto)
//!   --budget-steps N     cap the Andersen and liveness fixpoints at N steps
//!                        each; exhaustion degrades gracefully instead of
//!                        hanging (see DESIGN.md "Robustness")
//!   --budget-ms N        wall-clock cap per fixpoint solve, in milliseconds
//!   --jobs N             worker threads for the supervised scan executor
//!                        (default: available parallelism; report output is
//!                        byte-identical for any N)
//!   --retry K            attempts per scan unit before it is marked
//!                        failed-permanent (default 3)
//!   --unit-deadline-ms N per-unit wall-clock deadline enforced by the
//!                        supervisor; late units are requeued
//!   --journal FILE       write an append-only crash-safe scan journal
//!                        (checkpoint every completed function)
//!   --resume             replay the journal and skip already-completed
//!                        units (implies --journal; default path is
//!                        <project-dir>/scan.journal)
//!   --fail-fast          debugging mode: abort on the first parse error or
//!                        panic instead of isolating and continuing
//! ```
//!
//! Malformed source files are reported to stderr (with line:column spans)
//! and skipped; analysis continues over the files that parse. Exit status:
//! 0 with no findings, 1 with findings, 2 on usage/load errors (or when
//! every file fails to parse).

use std::path::PathBuf;

use valuecheck::{
    pipeline::{
        run_sentinel,
        run_with_obs,
        Options, //
    },
    project::load_dir,
    prune::PruneConfig,
    rank::RankConfig,
    sentinel::{
        salt_strings,
        SentinelConfig, //
    },
};
use vc_ir::Program;
use vc_obs::ObsSession;

fn main() {
    let mut dir: Option<PathBuf> = None;
    let mut defines: Vec<String> = Vec::new();
    let mut opts = Options::paper();
    let mut top: Option<usize> = None;
    let mut json = false;
    let mut stats = false;
    let mut metrics_json: Option<PathBuf> = None;
    let mut trace: Option<PathBuf> = None;
    let mut fail_fast = false;
    let mut sconf = SentinelConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--define" => {
                defines.push(
                    args.next()
                        .unwrap_or_else(|| die("--define needs a symbol")),
                );
            }
            "--all" => opts.cross_scope_only = false,
            "--no-rank" => {
                opts.rank = RankConfig {
                    enabled: false,
                    ..RankConfig::default()
                };
            }
            "--no-prune" => {
                opts.prune = PruneConfig {
                    config_dependency: false,
                    cursor: false,
                    unused_hints: false,
                    peer_definitions: false,
                    ..PruneConfig::default()
                };
            }
            "--top" => {
                top = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--top needs a number")),
                );
            }
            "--json" => json = true,
            "--stats" => stats = true,
            "--budget-steps" => {
                let n: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--budget-steps needs a number"));
                opts.harden = opts.harden.with_step_budget(n);
            }
            "--budget-ms" => {
                let n: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--budget-ms needs a number"));
                opts.harden = opts.harden.with_time_budget_ms(n);
            }
            "--jobs" => {
                sconf.jobs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--jobs needs a number"));
            }
            "--retry" => {
                let k: u32 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--retry needs a number"));
                sconf.retry = k.max(1);
            }
            "--unit-deadline-ms" => {
                let ms: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--unit-deadline-ms needs a number"));
                sconf.unit_deadline = Some(std::time::Duration::from_millis(ms));
            }
            "--journal" => {
                sconf.journal = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| die("--journal needs a path")),
                ));
            }
            "--resume" => sconf.resume = true,
            "--fail-fast" => fail_fast = true,
            "--metrics-json" => {
                metrics_json = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--metrics-json needs a path")),
                ));
            }
            "--trace" => {
                trace = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| die("--trace needs a path")),
                ));
            }
            "--help" | "-h" => {
                eprintln!(
                    "Usage: vcheck <project-dir> [--define SYM]... [--all] [--no-rank] \
                     [--no-prune] [--top N] [--json] [--stats] [--metrics-json FILE] \
                     [--trace FILE] [--budget-steps N] [--budget-ms N] [--jobs N] \
                     [--retry K] [--unit-deadline-ms N] [--journal FILE] [--resume] \
                     [--fail-fast]"
                );
                return;
            }
            other if dir.is_none() && !other.starts_with('-') => {
                dir = Some(PathBuf::from(other));
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    let dir = dir.unwrap_or_else(|| die("missing <project-dir>"));

    let project = load_dir(&dir).unwrap_or_else(|e| die(&format!("{}: {e}", dir.display())));
    if !project.has_history {
        eprintln!(
            "vcheck: no history.json found — using a single-author working-tree history; \
             cross-scope detection is limited to library return values"
        );
    }
    let obs = ObsSession::new();
    if fail_fast {
        opts.harden.isolate = false;
    }
    let (prog, parse_errors) = if fail_fast {
        let prog = Program::build(&project.source_refs(), &defines)
            .unwrap_or_else(|e| die(&format!("build failed: {e}")));
        (prog, Vec::new())
    } else {
        // Lenient build: report malformed files with their spans, keep
        // analysing the rest.
        let (prog, errors) = Program::build_lenient(&project.source_refs(), &defines);
        for e in &errors {
            eprintln!("vcheck: skipping file: {e}");
        }
        if prog.funcs.is_empty() && !errors.is_empty() {
            die("every source file failed to parse");
        }
        (prog, errors)
    };
    obs.registry
        .add("harden.parse_failures", parse_errors.len() as u64);

    if sconf.resume && sconf.journal.is_none() {
        sconf.journal = Some(dir.join("scan.journal"));
    }
    sconf.fingerprint_salt = salt_strings(&defines);

    // `--fail-fast` wants panics to propagate to the top of the process,
    // which the sequential path does naturally; everything else runs under
    // the supervised executor (output is identical either way).
    let mut analysis = if fail_fast {
        run_with_obs(&prog, &project.repo, &opts, obs.clone())
    } else {
        run_sentinel(&prog, &project.repo, &opts, &sconf, obs.clone())
    };
    for e in &parse_errors {
        let file = match e {
            vc_ir::program::BuildError::Parse { file, .. }
            | vc_ir::program::BuildError::Lower { file, .. } => file.clone(),
        };
        analysis.report.failures.insert(
            0,
            valuecheck::harden::FailureRecord {
                stage: valuecheck::harden::FailStage::Parse,
                file,
                function: None,
                message: e.to_string(),
            },
        );
    }
    eprintln!(
        "vcheck: {} unused definitions, {} cross-scope, {} pruned, {} reported",
        analysis.raw_candidates,
        analysis.cross_scope_candidates,
        analysis.prune_outcome.total_pruned(),
        analysis.detected()
    );
    if !analysis.report.failures.is_empty() {
        eprintln!(
            "vcheck: {} unit(s) of work failed and were isolated:",
            analysis.report.failures.len()
        );
        for f in &analysis.report.failures {
            eprintln!("vcheck:   {f}");
        }
    }

    let mut report = analysis.report.clone();
    if let Some(n) = top {
        report.rows.truncate(n);
    }
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_csv());
    }

    let snapshot = obs.registry.snapshot();
    if stats {
        eprint!("{}", snapshot.render_text());
    }
    if let Some(path) = metrics_json {
        let text = snapshot.to_json().to_string_pretty();
        std::fs::write(&path, text).unwrap_or_else(|e| die(&format!("{}: {e}", path.display())));
    }
    if let Some(path) = trace {
        let text = obs.tracer.to_chrome_json().to_string_pretty();
        std::fs::write(&path, text).unwrap_or_else(|e| die(&format!("{}: {e}", path.display())));
    }
    std::process::exit(if report.rows.is_empty() { 0 } else { 1 });
}

fn die(msg: &str) -> ! {
    eprintln!("vcheck: {msg}");
    std::process::exit(2);
}
