//! `vcheck` — ValueCheck from the command line.
//!
//! ```text
//! Usage: vcheck <project-dir> [options]
//!        vcheck delta <project-dir> --from REV --to REV [options]
//!        vcheck history <project-dir> [options]
//!        vcheck serve <project-dir> [options]
//!        vcheck tail <event-log> [--since SECS] [--op OP] [--json]
//!
//!   <project-dir>        directory with *.c sources and, ideally, a
//!                        history.json (see vc_vcs::HistorySpec)
//!   --define SYM         enable a preprocessor symbol (repeatable)
//!   --deadline-ms N      wall-clock deadline for the whole scan; on expiry
//!                        the remaining functions are skipped, the partial
//!                        report is printed with every row marked
//!                        low-confidence plus a `deadline exceeded` failure
//!                        record, and vcheck exits 3
//!   --all                keep non-cross-scope unused definitions too
//!   --no-rank            keep detection order instead of DOK ranking
//!   --no-prune           disable all pruning patterns
//!   --top N              print only the N highest-priority findings
//!   --json               emit findings as JSON instead of CSV
//!   --stats              print a metrics summary (funnel, fixpoint counters,
//!                        histograms, harden.* degradations) to stderr
//!   --metrics-json FILE  write the full metrics snapshot as JSON
//!   --trace FILE         write a Chrome trace_event file of the pipeline
//!                        spans (open in chrome://tracing or Perfetto)
//!   --profile FILE       write a flamegraph-compatible folded-stack profile
//!                        aggregated from the pipeline spans (span count per
//!                        stack — deterministic and byte-identical for any
//!                        --jobs; feed to flamegraph.pl or speedscope).
//!                        `--stats` additionally prints the top self-time
//!                        frames.
//!   --budget-steps N     cap the Andersen and liveness fixpoints at N steps
//!                        each; exhaustion degrades gracefully instead of
//!                        hanging (see DESIGN.md "Robustness")
//!   --budget-ms N        wall-clock cap per fixpoint solve, in milliseconds
//!   --jobs N             worker threads for the supervised scan executor
//!                        (default: available parallelism; report output is
//!                        byte-identical for any N)
//!   --retry K            attempts per scan unit before it is marked
//!                        failed-permanent (default 3)
//!   --unit-deadline-ms N per-unit wall-clock deadline enforced by the
//!                        supervisor; late units are requeued
//!   --journal FILE       write an append-only crash-safe scan journal
//!                        (checkpoint every completed function)
//!   --resume             replay the journal and skip already-completed
//!                        units (implies --journal; default path is
//!                        <project-dir>/scan.journal)
//!   --fail-fast          debugging mode: abort on the first parse error or
//!                        panic instead of isolating and continuing
//! ```
//!
//! Malformed source files are reported to stderr (with line:column spans)
//! and skipped; analysis continues over the files that parse. A directory
//! with zero `.c` files is a clean project: empty report, exit 0.
//!
//! Exit status contract (scan): 0 with no findings, 1 with findings, 2 on
//! usage/load errors (or when every file fails to parse), 3 when
//! `--deadline-ms` expired and the report is partial. An exit status of 3
//! means the printed findings are real but incomplete — re-run with a
//! larger deadline for the full report.
//!
//! The `delta` subcommand scans two revisions of the project's history and
//! classifies every finding as new / fixed / persisting using drift-stable
//! fingerprints (see DESIGN.md §10):
//!
//! ```text
//!   --from REV           old revision (HEAD, HEAD~N, or a commit id)
//!   --to REV             new revision
//!   --baseline FILE      suppress would-be-new findings whose fingerprint
//!                        appears in this snapshot store
//!   --write-baseline FILE  save the new revision's findings as a store
//!                        (usable as a later --baseline)
//! ```
//!
//! plus `--define/--all/--no-rank/--no-prune/--json/--stats/--metrics-json/
//! --jobs/--retry/--unit-deadline-ms/--journal/--resume` with the same
//! meanings as the main scan (the journal gains `.from`/`.to` suffixes, one
//! per side; `--resume` defaults it to `<project-dir>/delta.journal`).
//! Exit status: 0 when no *new* findings, 1 when new findings are present
//! (the CI gate), 2 on usage/load errors.
//!
//! The `history` subcommand replays **every** commit and drives each
//! finding through the born → persisting → churned → fixed | suppressed
//! lifecycle (see DESIGN.md §12), printing one CSV row per track and
//! persisting the event stream as a findings database:
//!
//! ```text
//!   --db FILE            findings database path (default:
//!                        <project-dir>/findings.lifedb)
//!   --suppress FILE      load the suppression store, and save it back
//!                        with advanced lines / healed fingerprints
//!   --lifecycle-json FILE  write the versioned lifecycle export (funnel,
//!                        per-scenario fix/churn rates, full event stream)
//!   --stats              additionally print the lifecycle funnel table
//! ```
//!
//! plus the shared scan/sentinel options (each replayed commit journals
//! under a `.c<N>` suffix; `--resume` defaults the journal to
//! `<project-dir>/history.journal`). Inline `// vcheck:allow(<scenario>)`
//! annotations suppress the finding on the next line (standalone) or
//! their own line (trailing). Exit status: 0 when nothing is live and
//! unsuppressed at head, 1 otherwise, 2 on usage/load errors. All outputs
//! are byte-identical for any `--jobs` value and across `--resume`.
//!
//! The `serve` subcommand runs vcheck as a long-lived warm-scan daemon
//! speaking JSON-lines over stdin/stdout (see DESIGN.md §14):
//!
//! ```text
//!   --deadline-ms N      default per-request deadline (requests may
//!                        override with a "deadline_ms" field)
//!   --queue-depth N      pending requests before the reader sheds
//!                        (default 64)
//!   --snapshot FILE      flush the latest findings as a snapshot store on
//!                        shutdown/EOF
//!   --trace FILE         write a Chrome trace of every request's span tree
//!                        on shutdown/EOF (same format as scan --trace)
//!   --metrics-json FILE  write the versioned metrics snapshot on
//!                        shutdown/EOF (same schema as scan --metrics-json)
//!   --event-log FILE     append one JSON-lines record per request
//!                        (trace id, op, outcome, latency, flags); the file
//!                        size-rotates to FILE.1 — read with `vcheck tail`
//!   --event-log-max-bytes N  rotation threshold (default 1 MiB)
//! ```
//!
//! plus `--define/--all/--no-rank/--no-prune/--budget-steps/--budget-ms`
//! with scan semantics. Warm replies are byte-identical to a cold scan of
//! the same tree, telemetry enabled or not; every reply carries a monotonic
//! `trace_id`, and `{"op":"status"}` reports per-op latency percentiles,
//! cache effectiveness, and the request funnel (see DESIGN.md §16). Exit
//! status: 0 on `{"op":"shutdown"}` or stdin EOF, 2 on startup errors;
//! malformed requests, panics, and deadline overruns are answered on the
//! protocol, never fatal.
//!
//! The `tail` subcommand renders a serve event log, oldest first (the
//! rotated `.1` generation first, then the live file): `vcheck tail
//! serve.events [--since SECS] [--op scan] [--json]`. Exit status: 0, or
//! 2 when the log does not exist.

use std::path::PathBuf;

use valuecheck::{
    delta::{
        delta_scan,
        DeltaStatus, //
    },
    eventlog,
    history::{
        history_scan,
        tracks_to_csv, //
    },
    incremental::SnapshotStore,
    pipeline::{
        run_sentinel,
        run_with_obs,
        Options, //
    },
    project::{load_dir, load_dir_or_empty},
    prune::PruneConfig,
    rank::RankConfig,
    sentinel::{
        salt_strings,
        SentinelConfig, //
    },
    serve::{run_daemon, ServeConfig, ServeEngine},
    suppress::SuppressStore,
};
use vc_ir::Program;
use vc_obs::ObsSession;
use vc_vcs::{
    CommitId,
    Repository, //
};

/// Heap accounting for `mem.*` metrics and trace counter tracks: every
/// allocation in the process is counted and attributed to the pipeline
/// stage (or sentinel worker unit) that made it. See `vc_obs::alloc`.
#[global_allocator]
static ALLOC: vc_obs::CountingAlloc = vc_obs::CountingAlloc;

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    match args.peek().map(String::as_str) {
        Some("delta") => {
            args.next();
            delta_main(args);
        }
        Some("history") => {
            args.next();
            history_main(args);
        }
        Some("serve") => {
            args.next();
            serve_main(args);
        }
        Some("tail") => {
            args.next();
            tail_main(args);
        }
        _ => scan_main(args),
    }
}

/// Resolves a revision argument: `HEAD`, `HEAD~N`, or a numeric commit id.
fn resolve_rev(repo: &Repository, s: &str) -> Option<CommitId> {
    let commits = repo.commits();
    if let Some(rest) = s.strip_prefix("HEAD") {
        let back: usize = if rest.is_empty() {
            0
        } else {
            rest.strip_prefix('~')?.parse().ok()?
        };
        let idx = commits.len().checked_sub(1 + back)?;
        return Some(commits[idx].id);
    }
    let n: u32 = s.parse().ok()?;
    commits.iter().find(|c| c.id.0 == n).map(|c| c.id)
}

fn delta_main(mut args: impl Iterator<Item = String>) -> ! {
    let mut dir: Option<PathBuf> = None;
    let mut defines: Vec<String> = Vec::new();
    let mut opts = Options::paper();
    let mut from_rev: Option<String> = None;
    let mut to_rev: Option<String> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut json = false;
    let mut stats = false;
    let mut metrics_json: Option<PathBuf> = None;
    let mut sconf = SentinelConfig::default();

    while let Some(a) = args.next() {
        match a.as_str() {
            "--from" => from_rev = Some(args.next().unwrap_or_else(|| die("--from needs a REV"))),
            "--to" => to_rev = Some(args.next().unwrap_or_else(|| die("--to needs a REV"))),
            "--baseline" => {
                baseline = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--baseline needs a path")),
                ));
            }
            "--write-baseline" => {
                write_baseline = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--write-baseline needs a path")),
                ));
            }
            "--define" => {
                defines.push(
                    args.next()
                        .unwrap_or_else(|| die("--define needs a symbol")),
                );
            }
            "--all" => opts.cross_scope_only = false,
            "--no-rank" => {
                opts.rank = RankConfig {
                    enabled: false,
                    ..RankConfig::default()
                };
            }
            "--no-prune" => {
                opts.prune = PruneConfig {
                    config_dependency: false,
                    cursor: false,
                    unused_hints: false,
                    peer_definitions: false,
                    ..PruneConfig::default()
                };
            }
            "--json" => json = true,
            "--stats" => stats = true,
            "--metrics-json" => {
                metrics_json = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--metrics-json needs a path")),
                ));
            }
            "--jobs" => {
                sconf.jobs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--jobs needs a number"));
            }
            "--retry" => {
                let k: u32 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--retry needs a number"));
                sconf.retry = k.max(1);
            }
            "--unit-deadline-ms" => {
                let ms: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--unit-deadline-ms needs a number"));
                sconf.unit_deadline = Some(std::time::Duration::from_millis(ms));
            }
            "--journal" => {
                sconf.journal = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| die("--journal needs a path")),
                ));
            }
            "--resume" => sconf.resume = true,
            "--help" | "-h" => {
                eprintln!(
                    "Usage: vcheck delta <project-dir> --from REV --to REV [--baseline FILE] \
                     [--write-baseline FILE] [--define SYM]... [--all] [--no-rank] [--no-prune] \
                     [--json] [--stats] [--metrics-json FILE] [--jobs N] [--retry K] \
                     [--unit-deadline-ms N] [--journal FILE] [--resume]"
                );
                std::process::exit(0);
            }
            other if dir.is_none() && !other.starts_with('-') => {
                dir = Some(PathBuf::from(other));
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    let dir = dir.unwrap_or_else(|| die("missing <project-dir>"));
    let from_rev = from_rev.unwrap_or_else(|| die("delta needs --from REV"));
    let to_rev = to_rev.unwrap_or_else(|| die("delta needs --to REV"));

    let project = load_dir(&dir).unwrap_or_else(|e| die(&format!("{}: {e}", dir.display())));
    if !project.has_history {
        die("delta needs a history.json (two revisions to compare)");
    }
    let repo = &project.repo;
    let from = resolve_rev(repo, &from_rev)
        .unwrap_or_else(|| die(&format!("cannot resolve --from revision `{from_rev}`")));
    let to = resolve_rev(repo, &to_rev)
        .unwrap_or_else(|| die(&format!("cannot resolve --to revision `{to_rev}`")));

    let baseline_set = match &baseline {
        Some(path) => {
            if !path.exists() {
                die(&format!("--baseline {}: file not found", path.display()));
            }
            SnapshotStore::load(path).fingerprint_set()
        }
        None => Default::default(),
    };

    if sconf.resume && sconf.journal.is_none() {
        sconf.journal = Some(dir.join("delta.journal"));
    }
    sconf.fingerprint_salt = salt_strings(&defines);

    let obs = ObsSession::new();
    let outcome = delta_scan(
        repo,
        from,
        to,
        &defines,
        &opts,
        &sconf,
        &baseline_set,
        obs.clone(),
    )
    .unwrap_or_else(|e| die(&format!("build failed: {e}")));

    if let Some(path) = &write_baseline {
        let store = SnapshotStore::from_findings(to, &outcome.to.findings);
        store
            .save(path)
            .unwrap_or_else(|e| die(&format!("{}: {e}", path.display())));
    }

    let report = &outcome.report;
    eprintln!(
        "vcheck delta: {} new, {} fixed, {} persisting, {} churned, {} suppressed (commit {} -> \
         {})",
        report.count(DeltaStatus::New),
        report.count(DeltaStatus::Fixed),
        report.count(DeltaStatus::Persisting),
        report.count(DeltaStatus::Churned),
        report.count(DeltaStatus::Suppressed),
        from.0,
        to.0,
    );
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_csv());
    }

    let snapshot = obs.registry.snapshot();
    if stats {
        eprint!("{}", snapshot.render_text());
    }
    if let Some(path) = metrics_json {
        let text = snapshot.to_json_export().to_string_pretty();
        std::fs::write(&path, text).unwrap_or_else(|e| die(&format!("{}: {e}", path.display())));
    }
    std::process::exit(if report.has_new() { 1 } else { 0 });
}

fn history_main(mut args: impl Iterator<Item = String>) -> ! {
    let mut dir: Option<PathBuf> = None;
    let mut defines: Vec<String> = Vec::new();
    let mut opts = Options::paper();
    let mut db_path: Option<PathBuf> = None;
    let mut suppress_path: Option<PathBuf> = None;
    let mut lifecycle_json: Option<PathBuf> = None;
    let mut stats = false;
    let mut metrics_json: Option<PathBuf> = None;
    let mut sconf = SentinelConfig::default();

    while let Some(a) = args.next() {
        match a.as_str() {
            "--db" => {
                db_path = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| die("--db needs a path")),
                ));
            }
            "--suppress" => {
                suppress_path = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--suppress needs a path")),
                ));
            }
            "--lifecycle-json" => {
                lifecycle_json = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--lifecycle-json needs a path")),
                ));
            }
            "--define" => {
                defines.push(
                    args.next()
                        .unwrap_or_else(|| die("--define needs a symbol")),
                );
            }
            "--all" => opts.cross_scope_only = false,
            "--no-rank" => {
                opts.rank = RankConfig {
                    enabled: false,
                    ..RankConfig::default()
                };
            }
            "--no-prune" => {
                opts.prune = PruneConfig {
                    config_dependency: false,
                    cursor: false,
                    unused_hints: false,
                    peer_definitions: false,
                    ..PruneConfig::default()
                };
            }
            "--stats" => stats = true,
            "--metrics-json" => {
                metrics_json = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--metrics-json needs a path")),
                ));
            }
            "--jobs" => {
                sconf.jobs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--jobs needs a number"));
            }
            "--retry" => {
                let k: u32 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--retry needs a number"));
                sconf.retry = k.max(1);
            }
            "--unit-deadline-ms" => {
                let ms: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--unit-deadline-ms needs a number"));
                sconf.unit_deadline = Some(std::time::Duration::from_millis(ms));
            }
            "--journal" => {
                sconf.journal = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| die("--journal needs a path")),
                ));
            }
            "--resume" => sconf.resume = true,
            "--help" | "-h" => {
                eprintln!(
                    "Usage: vcheck history <project-dir> [--db FILE] [--suppress FILE] \
                     [--lifecycle-json FILE] [--define SYM]... [--all] [--no-rank] [--no-prune] \
                     [--stats] [--metrics-json FILE] [--jobs N] [--retry K] \
                     [--unit-deadline-ms N] [--journal FILE] [--resume]"
                );
                std::process::exit(0);
            }
            other if dir.is_none() && !other.starts_with('-') => {
                dir = Some(PathBuf::from(other));
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    let dir = dir.unwrap_or_else(|| die("missing <project-dir>"));

    let project = load_dir(&dir).unwrap_or_else(|e| die(&format!("{}: {e}", dir.display())));
    if !project.has_history {
        die("history needs a history.json (commits to replay)");
    }

    if sconf.resume && sconf.journal.is_none() {
        sconf.journal = Some(dir.join("history.journal"));
    }
    sconf.fingerprint_salt = salt_strings(&defines);

    let suppress = match &suppress_path {
        Some(path) => SuppressStore::load(path),
        None => SuppressStore::default(),
    };

    let obs = ObsSession::new();
    let outcome = history_scan(
        &project.repo,
        &defines,
        &opts,
        &sconf,
        suppress,
        obs.clone(),
    )
    .unwrap_or_else(|e| die(&format!("build failed: {e}")));

    let db_path = db_path.unwrap_or_else(|| dir.join("findings.lifedb"));
    outcome
        .db
        .save(&db_path)
        .unwrap_or_else(|e| die(&format!("{}: {e}", db_path.display())));
    if let Some(path) = &suppress_path {
        // Persist the maintenance: advanced lines, healed fingerprints.
        outcome
            .suppress
            .save(path)
            .unwrap_or_else(|e| die(&format!("{}: {e}", path.display())));
    }

    let funnel = outcome.db.funnel();
    eprintln!(
        "vcheck history: {} commits, {} born, {} fixed, {} suppressed, {} live (head {})",
        outcome.commits,
        funnel.born,
        funnel.fixed,
        funnel.suppressed,
        funnel.live,
        outcome.head.map(|c| c.0 as i64).unwrap_or(-1),
    );
    print!("{}", tracks_to_csv(&outcome.db));

    let snapshot = obs.registry.snapshot();
    if stats {
        eprint!("{}", outcome.db.render_funnel());
        eprint!("{}", snapshot.render_text());
    }
    if let Some(path) = lifecycle_json {
        let text = outcome.db.to_json_export().to_string_pretty();
        std::fs::write(&path, text).unwrap_or_else(|e| die(&format!("{}: {e}", path.display())));
    }
    if let Some(path) = metrics_json {
        let text = snapshot.to_json_export().to_string_pretty();
        std::fs::write(&path, text).unwrap_or_else(|e| die(&format!("{}: {e}", path.display())));
    }
    std::process::exit(if funnel.live > 0 { 1 } else { 0 });
}

fn serve_main(mut args: impl Iterator<Item = String>) -> ! {
    let mut dir: Option<PathBuf> = None;
    let mut config = ServeConfig::default();

    while let Some(a) = args.next() {
        match a.as_str() {
            "--define" => {
                config.defines.push(
                    args.next()
                        .unwrap_or_else(|| die("--define needs a symbol")),
                );
            }
            "--all" => config.opts.cross_scope_only = false,
            "--no-rank" => {
                config.opts.rank = RankConfig {
                    enabled: false,
                    ..RankConfig::default()
                };
            }
            "--no-prune" => {
                config.opts.prune = PruneConfig {
                    config_dependency: false,
                    cursor: false,
                    unused_hints: false,
                    peer_definitions: false,
                    ..PruneConfig::default()
                };
            }
            "--deadline-ms" => {
                let ms: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--deadline-ms needs a number"));
                config.deadline = Some(std::time::Duration::from_millis(ms));
            }
            "--queue-depth" => {
                let n: usize = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--queue-depth needs a number"));
                config.queue_depth = n.max(1);
            }
            "--budget-steps" => {
                let n: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--budget-steps needs a number"));
                config.opts.harden = config.opts.harden.with_step_budget(n);
            }
            "--budget-ms" => {
                let n: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--budget-ms needs a number"));
                config.opts.harden = config.opts.harden.with_time_budget_ms(n);
            }
            "--snapshot" => {
                config.snapshot = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--snapshot needs a path")),
                ));
            }
            "--trace" => {
                config.trace = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| die("--trace needs a path")),
                ));
            }
            "--metrics-json" => {
                config.metrics_json = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--metrics-json needs a path")),
                ));
            }
            "--event-log" => {
                config.event_log = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--event-log needs a path")),
                ));
            }
            "--event-log-max-bytes" => {
                config.event_log_max_bytes = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--event-log-max-bytes needs a number"));
            }
            "--help" | "-h" => {
                eprintln!(
                    "Usage: vcheck serve <project-dir> [--define SYM]... [--all] [--no-rank] \
                     [--no-prune] [--deadline-ms N] [--queue-depth N] [--budget-steps N] \
                     [--budget-ms N] [--snapshot FILE] [--trace FILE] [--metrics-json FILE] \
                     [--event-log FILE] [--event-log-max-bytes N]\n\nRequests (JSON lines on \
                     stdin): {{\"op\":\"scan\"}}, {{\"op\":\"update\",\"files\":[..]}}, \
                     {{\"op\":\"status\"}}, {{\"op\":\"shutdown\"}}"
                );
                std::process::exit(0);
            }
            other if dir.is_none() && !other.starts_with('-') => {
                dir = Some(PathBuf::from(other));
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    let dir = dir.unwrap_or_else(|| die("missing <project-dir>"));
    let engine =
        ServeEngine::new(&dir, config).unwrap_or_else(|e| die(&format!("{}: {e}", dir.display())));
    eprintln!(
        "vcheck serve: watching {} (JSON lines on stdin)",
        dir.display()
    );
    let code = run_daemon(
        engine,
        std::io::BufReader::new(std::io::stdin()),
        std::io::stdout(),
    );
    std::process::exit(code);
}

/// `vcheck tail FILE`: renders a serve event log (see DESIGN.md §16) as
/// human-readable lines, oldest first, across the rotation boundary.
fn tail_main(mut args: impl Iterator<Item = String>) -> ! {
    let mut path: Option<PathBuf> = None;
    let mut since: Option<u64> = None;
    let mut op: Option<String> = None;
    let mut json = false;

    while let Some(a) = args.next() {
        match a.as_str() {
            "--since" => {
                since = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--since needs a number of seconds")),
                );
            }
            "--op" => {
                op = Some(args.next().unwrap_or_else(|| die("--op needs an op name")));
            }
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!(
                    "Usage: vcheck tail <event-log> [--since SECS] [--op OP] [--json]\n\n\
                     Renders a `vcheck serve --event-log` file, oldest first (including the \
                     rotated `.1` generation).\n  --since SECS  only events from the last \
                     SECS seconds\n  --op OP       only events for one op (scan, update, \
                     status, ...)\n  --json        raw JSON records instead of rendered lines"
                );
                std::process::exit(0);
            }
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(PathBuf::from(other));
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    let path = path.unwrap_or_else(|| die("missing <event-log> path"));
    if !path.exists() && !eventlog::EventLog::rotated_path(&path).exists() {
        die(&format!("{}: no such event log", path.display()));
    }
    let cutoff_ms = since.map(|s| eventlog::now_ms().saturating_sub(s.saturating_mul(1000)));
    let mut shown = 0usize;
    for ev in eventlog::read_events(&path) {
        if cutoff_ms.is_some_and(|c| ev.ts_ms < c) {
            continue;
        }
        if op.as_deref().is_some_and(|want| ev.op != want) {
            continue;
        }
        if json {
            println!("{}", ev.raw.to_string());
        } else {
            println!("{}", ev.render());
        }
        shown += 1;
    }
    eprintln!("vcheck tail: {shown} event(s)");
    std::process::exit(0);
}

fn scan_main(mut args: impl Iterator<Item = String>) -> ! {
    let mut dir: Option<PathBuf> = None;
    let mut defines: Vec<String> = Vec::new();
    let mut opts = Options::paper();
    let mut top: Option<usize> = None;
    let mut json = false;
    let mut stats = false;
    let mut metrics_json: Option<PathBuf> = None;
    let mut trace: Option<PathBuf> = None;
    let mut profile: Option<PathBuf> = None;
    let mut fail_fast = false;
    let mut deadline_ms: Option<u64> = None;
    let mut sconf = SentinelConfig::default();

    while let Some(a) = args.next() {
        match a.as_str() {
            "--define" => {
                defines.push(
                    args.next()
                        .unwrap_or_else(|| die("--define needs a symbol")),
                );
            }
            "--deadline-ms" => {
                deadline_ms = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--deadline-ms needs a number")),
                );
            }
            "--all" => opts.cross_scope_only = false,
            "--no-rank" => {
                opts.rank = RankConfig {
                    enabled: false,
                    ..RankConfig::default()
                };
            }
            "--no-prune" => {
                opts.prune = PruneConfig {
                    config_dependency: false,
                    cursor: false,
                    unused_hints: false,
                    peer_definitions: false,
                    ..PruneConfig::default()
                };
            }
            "--top" => {
                top = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--top needs a number")),
                );
            }
            "--json" => json = true,
            "--stats" => stats = true,
            "--budget-steps" => {
                let n: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--budget-steps needs a number"));
                opts.harden = opts.harden.with_step_budget(n);
            }
            "--budget-ms" => {
                let n: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--budget-ms needs a number"));
                opts.harden = opts.harden.with_time_budget_ms(n);
            }
            "--jobs" => {
                sconf.jobs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--jobs needs a number"));
            }
            "--retry" => {
                let k: u32 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--retry needs a number"));
                sconf.retry = k.max(1);
            }
            "--unit-deadline-ms" => {
                let ms: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--unit-deadline-ms needs a number"));
                sconf.unit_deadline = Some(std::time::Duration::from_millis(ms));
            }
            "--journal" => {
                sconf.journal = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| die("--journal needs a path")),
                ));
            }
            "--resume" => sconf.resume = true,
            "--fail-fast" => fail_fast = true,
            "--metrics-json" => {
                metrics_json = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--metrics-json needs a path")),
                ));
            }
            "--trace" => {
                trace = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| die("--trace needs a path")),
                ));
            }
            "--profile" => {
                profile = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| die("--profile needs a path")),
                ));
            }
            "--help" | "-h" => {
                eprintln!(
                    "Usage: vcheck <project-dir> [--define SYM]... [--all] [--no-rank] \
                     [--no-prune] [--top N] [--json] [--stats] [--metrics-json FILE] \
                     [--trace FILE] [--profile FILE] [--budget-steps N] [--budget-ms N] \
                     [--deadline-ms N] [--jobs N] \
                     [--retry K] [--unit-deadline-ms N] [--journal FILE] [--resume] \
                     [--fail-fast]\n       vcheck delta <project-dir> --from REV --to REV \
                     [options] (see `vcheck delta --help`)\n       vcheck history <project-dir> \
                     [options] (see `vcheck history --help`)\n       vcheck serve <project-dir> \
                     [options] (see `vcheck serve --help`)"
                );
                std::process::exit(0);
            }
            other if dir.is_none() && !other.starts_with('-') => {
                dir = Some(PathBuf::from(other));
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    let dir = dir.unwrap_or_else(|| die("missing <project-dir>"));

    // A directory with no `.c` files is a clean project (empty report,
    // exit 0), not a usage error — CI can point vcheck at a repo that
    // happens to contain no C sources.
    let project =
        load_dir_or_empty(&dir).unwrap_or_else(|e| die(&format!("{}: {e}", dir.display())));
    if !project.has_history && !project.sources.is_empty() {
        eprintln!(
            "vcheck: no history.json found — using a single-author working-tree history; \
             cross-scope detection is limited to library return values"
        );
    }

    if let Some(ms) = deadline_ms {
        // A deadlined scan runs through the serve engine in one-shot mode:
        // the same code path the daemon uses, so the partial-result
        // semantics (skip remaining functions, mark every row
        // low-confidence, append a failure record) are identical, and an
        // un-deadlined run through it is byte-identical to this batch path.
        let config = ServeConfig {
            opts,
            defines: defines.clone(),
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(&dir, config)
            .unwrap_or_else(|e| die(&format!("{}: {e}", dir.display())));
        let resp = engine
            .scan(Some(ms))
            .unwrap_or_else(|e| die(&format!("{}: {e}", dir.display())));
        eprintln!(
            "vcheck: {} unused definitions, {} cross-scope, {} pruned, {} reported",
            resp.raw_candidates,
            resp.cross_scope_candidates,
            resp.pruned,
            resp.report.rows.len(),
        );
        if resp.deadline_exceeded {
            eprintln!(
                "vcheck: deadline of {ms}ms exceeded — report is partial, every row is marked \
                 low-confidence (exit 3)"
            );
        }
        if !resp.report.failures.is_empty() {
            eprintln!(
                "vcheck: {} unit(s) of work failed and were isolated:",
                resp.report.failures.len()
            );
            for f in &resp.report.failures {
                eprintln!("vcheck:   {f}");
            }
        }
        let mut report = resp.report.clone();
        if let Some(n) = top {
            report.rows.truncate(n);
        }
        if json {
            println!("{}", report.to_json());
        } else {
            print!("{}", report.to_csv());
        }
        if stats {
            eprint!("{}", engine.obs().registry.snapshot().render_text());
        }
        if let Some(path) = metrics_json {
            let text = engine
                .obs()
                .registry
                .snapshot()
                .to_json_export()
                .to_string_pretty();
            std::fs::write(&path, text)
                .unwrap_or_else(|e| die(&format!("{}: {e}", path.display())));
        }
        let code = if resp.deadline_exceeded {
            3
        } else if report.rows.is_empty() {
            0
        } else {
            1
        };
        std::process::exit(code);
    }

    let obs = ObsSession::new();
    if fail_fast {
        opts.harden.isolate = false;
    }
    let parse_mem = vc_obs::MemScope::enter(vc_obs::alloc::SCOPE_PARSE);
    let (prog, parse_errors, recover_stats) = if fail_fast {
        let prog = Program::build(&project.source_refs(), &defines)
            .unwrap_or_else(|e| die(&format!("build failed: {e}")));
        (prog, Vec::new(), vc_ir::program::RecoverStats::default())
    } else {
        // Recovering build: corrupted regions cost only themselves. Each
        // error is function-granular when recovery could isolate it, so say
        // which function was dropped/degraded rather than implying the
        // whole file was skipped.
        let (prog, errors, stats) = Program::build_recovering(&project.source_refs(), &defines);
        for e in &errors {
            match e.function() {
                Some(func) => eprintln!("vcheck: skipping function {func}: {e}"),
                None => eprintln!("vcheck: skipping file: {e}"),
            }
        }
        if prog.funcs.is_empty() && !errors.is_empty() {
            die("every source file failed to parse");
        }
        (prog, errors, stats)
    };
    {
        // The flush needs the session installed to reach its registry.
        let _g = obs.install();
        parse_mem.finish();
    }
    obs.registry.add(
        vc_obs::names::HARDEN_PARSE_FAILURES,
        parse_errors.len() as u64,
    );
    obs.registry
        .add(vc_obs::names::RECOVER_LEX_ERRORS, recover_stats.lex_errors);
    obs.registry.add(
        vc_obs::names::RECOVER_PARSE_ERRORS,
        recover_stats.parse_errors,
    );
    obs.registry.add(
        vc_obs::names::RECOVER_POISONED_STMTS,
        recover_stats.poisoned_stmts,
    );
    obs.registry.add(
        vc_obs::names::RECOVER_FUNCTIONS_DROPPED,
        recover_stats.functions_dropped,
    );
    obs.registry.add(
        vc_obs::names::RECOVER_FILES_DROPPED,
        recover_stats.files_dropped,
    );

    if sconf.resume && sconf.journal.is_none() {
        sconf.journal = Some(dir.join("scan.journal"));
    }
    sconf.fingerprint_salt = salt_strings(&defines);

    // `--fail-fast` wants panics to propagate to the top of the process,
    // which the sequential path does naturally; everything else runs under
    // the supervised executor (output is identical either way).
    let mut analysis = if fail_fast {
        run_with_obs(&prog, &project.repo, &opts, obs.clone())
    } else {
        run_sentinel(&prog, &project.repo, &opts, &sconf, obs.clone())
    };
    // Front-end failures go ahead of the analysis-stage ones, in input
    // order: one splice instead of repeated `insert(0, ..)` (which is both
    // quadratic and order-reversing).
    let front_end_failures = parse_errors
        .iter()
        .map(|e| valuecheck::harden::FailureRecord {
            stage: valuecheck::harden::FailStage::Parse,
            file: e.file().to_string(),
            function: e.function().map(str::to_string),
            message: e.to_string(),
        });
    analysis
        .report
        .failures
        .splice(0..0, front_end_failures.collect::<Vec<_>>());
    eprintln!(
        "vcheck: {} unused definitions, {} cross-scope, {} pruned, {} reported",
        analysis.raw_candidates,
        analysis.cross_scope_candidates,
        analysis.prune_outcome.total_pruned(),
        analysis.detected()
    );
    if !analysis.report.failures.is_empty() {
        eprintln!(
            "vcheck: {} unit(s) of work failed and were isolated:",
            analysis.report.failures.len()
        );
        for f in &analysis.report.failures {
            eprintln!("vcheck:   {f}");
        }
    }

    let mut report = analysis.report.clone();
    if let Some(n) = top {
        report.rows.truncate(n);
    }
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_csv());
    }

    let snapshot = obs.registry.snapshot();
    if stats {
        eprint!("{}", snapshot.render_text());
        let folded = vc_obs::FoldedProfile::from_records(&obs.tracer.records());
        eprint!("{}", folded.render_top(10));
    }
    if let Some(path) = metrics_json {
        let text = snapshot.to_json_export().to_string_pretty();
        std::fs::write(&path, text).unwrap_or_else(|e| die(&format!("{}: {e}", path.display())));
    }
    if let Some(path) = trace {
        let text = obs.tracer.to_chrome_json().to_string_pretty();
        std::fs::write(&path, text).unwrap_or_else(|e| die(&format!("{}: {e}", path.display())));
    }
    if let Some(path) = profile {
        // The canonical ("logical") view: worker lanes spliced under the
        // pipeline stages, so the stack set is identical for any --jobs N.
        // Weighted by span count, not wall time — wall-clock weights would
        // differ between runs, and the folded file is specified to be
        // byte-identical across --jobs. Self-times live in the --stats
        // top-frames table.
        let folded = vc_obs::FoldedProfile::logical(&obs.tracer.records());
        std::fs::write(&path, folded.render(vc_obs::Weight::Samples))
            .unwrap_or_else(|e| die(&format!("{}: {e}", path.display())));
    }
    std::process::exit(if report.rows.is_empty() { 0 } else { 1 });
}

fn die(msg: &str) -> ! {
    eprintln!("vcheck: {msg}");
    std::process::exit(2);
}
