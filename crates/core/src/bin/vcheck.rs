//! `vcheck` — ValueCheck from the command line.
//!
//! ```text
//! Usage: vcheck <project-dir> [options]
//!
//!   <project-dir>        directory with *.c sources and, ideally, a
//!                        history.json (see vc_vcs::HistorySpec)
//!   --define SYM         enable a preprocessor symbol (repeatable)
//!   --all                keep non-cross-scope unused definitions too
//!   --no-rank            keep detection order instead of DOK ranking
//!   --no-prune           disable all pruning patterns
//!   --top N              print only the N highest-priority findings
//!   --json               emit findings as JSON instead of CSV
//!   --stats              print a metrics summary (funnel, fixpoint counters,
//!                        histograms) to stderr
//!   --metrics-json FILE  write the full metrics snapshot as JSON
//!   --trace FILE         write a Chrome trace_event file of the pipeline
//!                        spans (open in chrome://tracing or Perfetto)
//! ```
//!
//! Exit status: 0 with no findings, 1 with findings, 2 on usage/load errors.

use std::path::PathBuf;

use valuecheck::{
    pipeline::{
        run_with_obs,
        Options, //
    },
    project::load_dir,
    prune::PruneConfig,
    rank::RankConfig,
};
use vc_ir::Program;
use vc_obs::ObsSession;

fn main() {
    let mut dir: Option<PathBuf> = None;
    let mut defines: Vec<String> = Vec::new();
    let mut opts = Options::paper();
    let mut top: Option<usize> = None;
    let mut json = false;
    let mut stats = false;
    let mut metrics_json: Option<PathBuf> = None;
    let mut trace: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--define" => {
                defines.push(
                    args.next()
                        .unwrap_or_else(|| die("--define needs a symbol")),
                );
            }
            "--all" => opts.cross_scope_only = false,
            "--no-rank" => {
                opts.rank = RankConfig {
                    enabled: false,
                    ..RankConfig::default()
                };
            }
            "--no-prune" => {
                opts.prune = PruneConfig {
                    config_dependency: false,
                    cursor: false,
                    unused_hints: false,
                    peer_definitions: false,
                    ..PruneConfig::default()
                };
            }
            "--top" => {
                top = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--top needs a number")),
                );
            }
            "--json" => json = true,
            "--stats" => stats = true,
            "--metrics-json" => {
                metrics_json = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--metrics-json needs a path")),
                ));
            }
            "--trace" => {
                trace = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| die("--trace needs a path")),
                ));
            }
            "--help" | "-h" => {
                eprintln!(
                    "Usage: vcheck <project-dir> [--define SYM]... [--all] [--no-rank] \
                     [--no-prune] [--top N] [--json] [--stats] [--metrics-json FILE] \
                     [--trace FILE]"
                );
                return;
            }
            other if dir.is_none() && !other.starts_with('-') => {
                dir = Some(PathBuf::from(other));
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    let dir = dir.unwrap_or_else(|| die("missing <project-dir>"));

    let project = load_dir(&dir).unwrap_or_else(|e| die(&format!("{}: {e}", dir.display())));
    if !project.has_history {
        eprintln!(
            "vcheck: no history.json found — using a single-author working-tree history; \
             cross-scope detection is limited to library return values"
        );
    }
    let prog = Program::build(&project.source_refs(), &defines)
        .unwrap_or_else(|e| die(&format!("build failed: {e}")));

    let obs = ObsSession::new();
    let analysis = run_with_obs(&prog, &project.repo, &opts, obs.clone());
    eprintln!(
        "vcheck: {} unused definitions, {} cross-scope, {} pruned, {} reported",
        analysis.raw_candidates,
        analysis.cross_scope_candidates,
        analysis.prune_outcome.total_pruned(),
        analysis.detected()
    );

    let mut report = analysis.report.clone();
    if let Some(n) = top {
        report.rows.truncate(n);
    }
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_csv());
    }

    let snapshot = obs.registry.snapshot();
    if stats {
        eprint!("{}", snapshot.render_text());
    }
    if let Some(path) = metrics_json {
        let text = snapshot.to_json().to_string_pretty();
        std::fs::write(&path, text).unwrap_or_else(|e| die(&format!("{}: {e}", path.display())));
    }
    if let Some(path) = trace {
        let text = obs.tracer.to_chrome_json().to_string_pretty();
        std::fs::write(&path, text).unwrap_or_else(|e| die(&format!("{}: {e}", path.display())));
    }
    std::process::exit(if report.rows.is_empty() { 0 } else { 1 });
}

fn die(msg: &str) -> ! {
    eprintln!("vcheck: {msg}");
    std::process::exit(2);
}
