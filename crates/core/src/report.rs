//! Final bug reports: serializable rows plus CSV and JSON rendering,
//! matching the artifact's `detected.csv` output.

use vc_obs::Json;
use vc_vcs::Repository;

use crate::{
    candidate::Scenario,
    harden::FailureRecord,
    rank::Ranked, //
};

/// One row of the final report.
#[derive(Clone, Debug)]
pub struct ReportRow {
    /// Rank position (1-based; 1 = least familiar author).
    pub rank: usize,
    /// File of the unused definition.
    pub file: String,
    /// 1-based line of the definition.
    pub line: u32,
    /// Containing function.
    pub function: String,
    /// Variable (or field) name.
    pub variable: String,
    /// Scenario label: `retval`, `param`, or `overwritten`.
    pub scenario: String,
    /// Resolved author name of the definition line, if known.
    pub author: Option<String>,
    /// Familiarity (DOK) score; lower = higher priority.
    pub familiarity: Option<f64>,
    /// Whether the finding crossed author scopes.
    pub cross_scope: bool,
    /// Whether the backing analysis was degraded (liveness budget cut the
    /// fixpoint short, or authorship had to fall back to the conservative
    /// cross-scope default).
    pub low_confidence: bool,
}

/// A complete report.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Ranked rows, highest priority first.
    pub rows: Vec<ReportRow>,
    /// Units of work that were poisoned (panicked or failed to parse) and
    /// isolated instead of aborting the run.
    pub failures: Vec<FailureRecord>,
}

impl Report {
    /// Builds a report from ranked findings.
    pub fn from_ranked(prog: &vc_ir::Program, repo: &Repository, ranked: &[Ranked]) -> Report {
        let rows = ranked
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let c = &r.item.candidate;
                ReportRow {
                    rank: i + 1,
                    file: prog.source.name(c.span.file).to_string(),
                    line: c.span.line(),
                    function: c.func_name.clone(),
                    variable: c.var_name.clone(),
                    scenario: match &c.scenario {
                        Scenario::RetVal { .. } => "retval".to_string(),
                        Scenario::Param { .. } => "param".to_string(),
                        Scenario::Overwritten => "overwritten".to_string(),
                    },
                    author: r.author.map(|a| repo.author(a).name.clone()),
                    familiarity: r.familiarity,
                    cross_scope: r.item.cross_scope,
                    low_confidence: r.item.candidate.low_confidence || r.item.authorship_unknown,
                }
            })
            .collect();
        Report {
            rows,
            failures: Vec::new(),
        }
    }

    /// Renders the report as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "rank,file,line,function,variable,scenario,author,familiarity,cross_scope,low_confidence\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}\n",
                r.rank,
                csv_escape(&r.file),
                r.line,
                csv_escape(&r.function),
                csv_escape(&r.variable),
                r.scenario,
                csv_escape(r.author.as_deref().unwrap_or("")),
                r.familiarity.map(|f| format!("{f:.3}")).unwrap_or_default(),
                r.cross_scope,
                r.low_confidence,
            ));
        }
        out
    }

    /// Every rendered byte of the report — the CSV followed by the JSON —
    /// as one buffer. The determinism tests compare this across worker
    /// counts and resume points: equality here means equality of anything
    /// `vcheck` can print.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = self.to_csv().into_bytes();
        out.extend_from_slice(self.to_json().as_bytes());
        out
    }

    /// Renders the report as pretty-printed JSON: `{"rows": [...]}`.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string_pretty()
    }

    /// The report as a [`Json`] value, for embedding in larger documents
    /// (the serve protocol replies with the report inline). Rendering this
    /// with `to_string_pretty` is byte-identical to [`Report::to_json`].
    pub fn to_json_value(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("rank".into(), Json::Int(r.rank as i64)),
                    ("file".into(), Json::Str(r.file.clone())),
                    ("line".into(), Json::Int(r.line as i64)),
                    ("function".into(), Json::Str(r.function.clone())),
                    ("variable".into(), Json::Str(r.variable.clone())),
                    ("scenario".into(), Json::Str(r.scenario.clone())),
                    (
                        "author".into(),
                        match &r.author {
                            Some(a) => Json::Str(a.clone()),
                            None => Json::Null,
                        },
                    ),
                    (
                        "familiarity".into(),
                        match r.familiarity {
                            Some(f) => Json::Float(f),
                            None => Json::Null,
                        },
                    ),
                    ("cross_scope".into(), Json::Bool(r.cross_scope)),
                    ("low_confidence".into(), Json::Bool(r.low_confidence)),
                ])
            })
            .collect();
        let failures = self
            .failures
            .iter()
            .map(|f| {
                Json::Obj(vec![
                    ("stage".into(), Json::Str(f.stage.label().to_string())),
                    ("file".into(), Json::Str(f.file.clone())),
                    (
                        "function".into(),
                        match &f.function {
                            Some(func) => Json::Str(func.clone()),
                            None => Json::Null,
                        },
                    ),
                    ("message".into(), Json::Str(f.message.clone())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("rows".into(), Json::Arr(rows)),
            ("failures".into(), Json::Arr(failures)),
        ])
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn csv_escaping_quotes_embedded_newlines() {
        assert_eq!(csv_escape("two\nlines"), "\"two\nlines\"");
        assert_eq!(csv_escape("cr\rhere"), "\"cr\rhere\"");
        assert_eq!(csv_escape("crlf\r\nend"), "\"crlf\r\nend\"");
    }

    #[test]
    fn newline_in_author_stays_one_csv_record() {
        let r = Report {
            rows: vec![ReportRow {
                rank: 1,
                file: "a.c".into(),
                line: 3,
                function: "f".into(),
                variable: "x".into(),
                scenario: "overwritten".into(),
                author: Some("evil\nauthor".into()),
                familiarity: None,
                cross_scope: true,
                low_confidence: false,
            }],
            failures: Vec::new(),
        };
        let csv = r.to_csv();
        // Header + one (quoted) record: the embedded newline must not tear
        // the row, so unquoted record boundaries stay at exactly two.
        let records = csv.split('\n').filter(|l| !l.is_empty()).count();
        assert_eq!(records, 3, "newline is inside quotes, not a row break");
        assert!(csv.contains("\"evil\nauthor\""));
    }

    #[test]
    fn empty_report_has_header_only() {
        let r = Report::default();
        assert!(r.is_empty());
        assert_eq!(r.to_csv().lines().count(), 1);
    }

    #[test]
    fn json_report_parses_and_keeps_fields() {
        let r = Report {
            rows: vec![ReportRow {
                rank: 1,
                file: "nfs.c".into(),
                line: 6,
                function: "nfs_readdir".into(),
                variable: "error".into(),
                scenario: "retval".into(),
                author: Some("author1".into()),
                familiarity: Some(0.25),
                cross_scope: true,
                low_confidence: false,
            }],
            failures: vec![crate::harden::FailureRecord {
                stage: crate::harden::FailStage::Detect,
                file: "bad.c".into(),
                function: Some("broken".into()),
                message: "boom".into(),
            }],
        };
        let doc = vc_obs::json::parse(&r.to_json()).unwrap();
        let rows = doc.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("line").and_then(Json::as_i64), Some(6));
        assert_eq!(
            rows[0].get("author").and_then(Json::as_str),
            Some("author1")
        );
        assert_eq!(
            rows[0].get("cross_scope").and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(
            rows[0].get("low_confidence").and_then(Json::as_bool),
            Some(false)
        );
        let failures = doc.get("failures").and_then(Json::as_arr).unwrap();
        assert_eq!(failures.len(), 1);
        assert_eq!(
            failures[0].get("stage").and_then(Json::as_str),
            Some("detect")
        );
        assert_eq!(
            failures[0].get("function").and_then(Json::as_str),
            Some("broken")
        );
    }
}
