//! Final bug reports: serializable rows plus CSV rendering, matching the
//! artifact's `detected.csv` output.

use serde::Serialize;
use vc_vcs::Repository;

use crate::{
    candidate::Scenario,
    rank::Ranked, //
};

/// One row of the final report.
#[derive(Clone, Debug, Serialize)]
pub struct ReportRow {
    /// Rank position (1-based; 1 = least familiar author).
    pub rank: usize,
    /// File of the unused definition.
    pub file: String,
    /// 1-based line of the definition.
    pub line: u32,
    /// Containing function.
    pub function: String,
    /// Variable (or field) name.
    pub variable: String,
    /// Scenario label: `retval`, `param`, or `overwritten`.
    pub scenario: String,
    /// Resolved author name of the definition line, if known.
    pub author: Option<String>,
    /// Familiarity (DOK) score; lower = higher priority.
    pub familiarity: Option<f64>,
    /// Whether the finding crossed author scopes.
    pub cross_scope: bool,
}

/// A complete report.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Report {
    /// Ranked rows, highest priority first.
    pub rows: Vec<ReportRow>,
}

impl Report {
    /// Builds a report from ranked findings.
    pub fn from_ranked(
        prog: &vc_ir::Program,
        repo: &Repository,
        ranked: &[Ranked],
    ) -> Report {
        let rows = ranked
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let c = &r.item.candidate;
                ReportRow {
                    rank: i + 1,
                    file: prog.source.name(c.span.file).to_string(),
                    line: c.span.line(),
                    function: c.func_name.clone(),
                    variable: c.var_name.clone(),
                    scenario: match &c.scenario {
                        Scenario::RetVal { .. } => "retval".to_string(),
                        Scenario::Param { .. } => "param".to_string(),
                        Scenario::Overwritten => "overwritten".to_string(),
                    },
                    author: r.author.map(|a| repo.author(a).name.clone()),
                    familiarity: r.familiarity,
                    cross_scope: r.item.cross_scope,
                }
            })
            .collect();
        Report { rows }
    }

    /// Renders the report as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("rank,file,line,function,variable,scenario,author,familiarity,cross_scope\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                r.rank,
                csv_escape(&r.file),
                r.line,
                csv_escape(&r.function),
                csv_escape(&r.variable),
                r.scenario,
                csv_escape(r.author.as_deref().unwrap_or("")),
                r.familiarity.map(|f| format!("{f:.3}")).unwrap_or_default(),
                r.cross_scope,
            ));
        }
        out
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn empty_report_has_header_only() {
        let r = Report::default();
        assert!(r.is_empty());
        assert_eq!(r.to_csv().lines().count(), 1);
    }
}
