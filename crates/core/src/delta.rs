//! Differential scanning: which findings did a revision introduce, fix, or
//! merely shift?
//!
//! A finding's raw location (file + line) is useless as an identity across
//! revisions — inserting one line above it changes the line number of every
//! finding below, and naive location matching then reports the whole file
//! as "all fixed, all new". Instead each finding gets a [`Fingerprint`]:
//! an FNV-1a hash of its *drift-stable* coordinates — file path, containing
//! function, variable, scenario, the whitespace-normalized text of the
//! definition line, and an ordinal among same-keyed findings — with the raw
//! line number deliberately excluded. Pure line drift (insertions or
//! deletions elsewhere in the file) leaves every component unchanged.
//!
//! [`classify`] matches the two sides in two passes:
//!
//! 1. **fingerprint** — equal fingerprints pair up in line order
//!    (a multiset match, so duplicate-keyed findings pair one-to-one);
//! 2. **line map** — findings whose fingerprint changed (e.g. the
//!    definition line itself was edited) fall back to the
//!    [`vc_vcs::diff`] edit script: if the old line maps onto a new-side
//!    finding with the same file/function/variable/scenario, it still
//!    counts as persisting (under `delta.line_mapped`).
//!
//! A fingerprint match is further split by *location*: when the matched
//! definition sits further than [`CHURN_NEARBY_LINES`] from where the edit
//! script projects its old position (the code was reorganised around it,
//! not merely drifted), the row classifies as `churned` rather than
//! `persisting` — the lifecycle scanner treats churn as a proxy
//! false-positive signal, and folding it into `persisting` would hide it.
//!
//! What remains on the new side is `new` (or `suppressed` when its
//! fingerprint appears in a `--baseline` set); what remains on the old side
//! is `fixed`. The classified rows render as CSV and JSON ([`DeltaReport`])
//! with the same byte-determinism guarantees as the main report: identical
//! for any `--jobs` value and across journal resumes.

use std::collections::{
    HashMap,
    HashSet,
    VecDeque, //
};

use vc_ir::{
    program::BuildError,
    Program, //
};
use vc_obs::{
    names,
    Json,
    ObsSession, //
};
use vc_vcs::{
    diff::LineMap,
    CommitId,
    Repository, //
};

use crate::{
    candidate::Scenario,
    pipeline::{
        run_at_commit,
        Options,
        RevisionAnalysis, //
    },
    rank::Ranked,
    sentinel::SentinelConfig,
};

/// A drift-stable identity for one finding.
///
/// Two findings in different revisions with equal fingerprints are the same
/// finding; the hash covers file path, function, variable, scenario label,
/// the whitespace-normalized definition-line text, and an ordinal among
/// findings sharing all of those — but **not** the raw line number.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// Renders as 16 lower-case hex digits (the on-disk and CSV form).
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the 16-hex-digit form.
    pub fn parse_hex(s: &str) -> Option<Fingerprint> {
        u64::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

/// One fingerprinted finding, self-contained (no [`Program`] needed to
/// interpret it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The drift-stable identity.
    pub fingerprint: Fingerprint,
    /// File of the unused definition.
    pub file: String,
    /// 1-based definition line *in its own revision*.
    pub line: u32,
    /// Containing function.
    pub function: String,
    /// Variable (or field) name.
    pub variable: String,
    /// Scenario label: `retval`, `param`, or `overwritten`.
    pub scenario: String,
}

/// Collapses runs of whitespace so a re-indented definition line keeps its
/// fingerprint (and a trailing-space blame touch does too).
pub fn normalize_context(line: &str) -> String {
    line.split_whitespace().collect::<Vec<_>>().join(" ")
}

const FNV_SEED: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a_field(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Field separator, so ("ab","c") != ("a","bc").
    h ^= 0xFF;
    h.wrapping_mul(FNV_PRIME)
}

/// Hashes the stable coordinates of a finding into a [`Fingerprint`].
pub fn fingerprint_of(
    file: &str,
    function: &str,
    variable: &str,
    scenario: &str,
    context: &str,
    ordinal: u32,
) -> Fingerprint {
    let mut h = FNV_SEED;
    h = fnv1a_field(h, file.as_bytes());
    h = fnv1a_field(h, function.as_bytes());
    h = fnv1a_field(h, variable.as_bytes());
    h = fnv1a_field(h, scenario.as_bytes());
    h = fnv1a_field(h, context.as_bytes());
    h = fnv1a_field(h, &ordinal.to_le_bytes());
    Fingerprint(h)
}

fn scenario_label(s: &Scenario) -> &'static str {
    match s {
        Scenario::RetVal { .. } => "retval",
        Scenario::Param { .. } => "param",
        Scenario::Overwritten => "overwritten",
    }
}

/// Fingerprints ranked findings against their program's sources.
///
/// The ordinal disambiguates findings that agree on every other coordinate
/// (e.g. two textually identical `ret = f();` definitions of the same
/// variable in one function): same-keyed findings are numbered in line
/// order, which pure drift preserves.
pub fn fingerprint_ranked(prog: &Program, ranked: &[Ranked]) -> Vec<Finding> {
    // (file, function, variable, scenario, context) key → indices, to
    // assign ordinals in line order.
    let mut keyed: Vec<(String, u32, usize)> = Vec::with_capacity(ranked.len());
    let mut contexts: Vec<String> = Vec::with_capacity(ranked.len());
    for (i, r) in ranked.iter().enumerate() {
        let c = &r.item.candidate;
        let file = prog.source.name(c.span.file);
        let context = prog
            .source
            .file(c.span.file)
            .and_then(|f| {
                f.content
                    .lines()
                    .nth((c.span.line() as usize).saturating_sub(1))
            })
            .map(normalize_context)
            .unwrap_or_default();
        let key = format!(
            "{file}\u{0}{}\u{0}{}\u{0}{}\u{0}{context}",
            c.func_name,
            c.var_name,
            scenario_label(&c.scenario)
        );
        keyed.push((key, c.span.line(), i));
        contexts.push(context);
    }
    let mut groups: HashMap<&str, Vec<(u32, usize)>> = HashMap::new();
    for (key, line, i) in &keyed {
        groups.entry(key).or_default().push((*line, *i));
    }
    let mut ordinals = vec![0u32; ranked.len()];
    for members in groups.values_mut() {
        members.sort_unstable();
        for (ord, (_, i)) in members.iter().enumerate() {
            ordinals[*i] = ord as u32;
        }
    }
    ranked
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let c = &r.item.candidate;
            let file = prog.source.name(c.span.file).to_string();
            let function = c.func_name.clone();
            let variable = c.var_name.clone();
            let scenario = scenario_label(&c.scenario).to_string();
            let fingerprint = fingerprint_of(
                &file,
                &function,
                &variable,
                &scenario,
                &contexts[i],
                ordinals[i],
            );
            Finding {
                fingerprint,
                file,
                line: c.span.line(),
                function,
                variable,
                scenario,
            }
        })
        .collect()
}

/// A matched finding counts as `persisting` only while its new location is
/// within this many lines of where the old revision's edit script projects
/// it; further away it is `churned` — same finding, relocated code.
pub const CHURN_NEARBY_LINES: u32 = 3;

/// Lifecycle of one finding across the scanned pair of revisions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeltaStatus {
    /// Present in the new revision only.
    New,
    /// Present in the old revision only.
    Fixed,
    /// Present in both (fingerprint match or line-map match), at (or near)
    /// the location the edit script predicts.
    Persisting,
    /// Present in both, but relocated beyond [`CHURN_NEARBY_LINES`] of its
    /// projected position (the surrounding code was reorganised).
    Churned,
    /// Would be `New`, but its fingerprint is in the baseline set.
    Suppressed,
}

impl DeltaStatus {
    /// Stable lower-case label (CSV/JSON field).
    pub fn label(self) -> &'static str {
        match self {
            DeltaStatus::New => "new",
            DeltaStatus::Fixed => "fixed",
            DeltaStatus::Persisting => "persisting",
            DeltaStatus::Churned => "churned",
            DeltaStatus::Suppressed => "suppressed",
        }
    }
}

/// One classified finding.
#[derive(Clone, Debug)]
pub struct DeltaRow {
    /// Lifecycle classification.
    pub status: DeltaStatus,
    /// The finding (new-revision coordinates when it exists there,
    /// old-revision coordinates for `fixed`).
    pub finding: Finding,
    /// Line in the old revision (`None` for `new`/`suppressed`).
    pub old_line: Option<u32>,
    /// Line in the new revision (`None` for `fixed`).
    pub new_line: Option<u32>,
    /// The old-side fingerprint of a matched finding (`Some` for
    /// `persisting`/`churned`/`fixed`). Differs from `finding.fingerprint`
    /// exactly when the pair was made by the line-map fallback — this is
    /// what lets the lifecycle scanner follow one finding's identity across
    /// an edit to its own definition line.
    pub old_fingerprint: Option<Fingerprint>,
}

/// The classified differential report.
#[derive(Clone, Debug, Default)]
pub struct DeltaReport {
    /// Classified rows, sorted by (status, file, function, variable, line,
    /// fingerprint) — a canonical order independent of scan scheduling.
    pub rows: Vec<DeltaRow>,
}

impl DeltaReport {
    /// Rows with the given status.
    pub fn count(&self, status: DeltaStatus) -> usize {
        self.rows.iter().filter(|r| r.status == status).count()
    }

    /// Whether any *unsuppressed* new findings are present (the CI gate:
    /// `vcheck delta` exits 1 exactly when this is true).
    pub fn has_new(&self) -> bool {
        self.rows.iter().any(|r| r.status == DeltaStatus::New)
    }

    /// Records `delta.*` counters into the installed observability session.
    pub fn record_metrics(&self) {
        vc_obs::counter_add(names::DELTA_NEW, self.count(DeltaStatus::New) as u64);
        vc_obs::counter_add(names::DELTA_FIXED, self.count(DeltaStatus::Fixed) as u64);
        vc_obs::counter_add(
            names::DELTA_PERSISTING,
            self.count(DeltaStatus::Persisting) as u64,
        );
        vc_obs::counter_add(
            names::DELTA_CHURNED,
            self.count(DeltaStatus::Churned) as u64,
        );
        vc_obs::counter_add(
            names::DELTA_SUPPRESSED,
            self.count(DeltaStatus::Suppressed) as u64,
        );
    }

    /// Renders as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("status,fingerprint,file,old_line,new_line,function,variable,scenario\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                r.status.label(),
                r.finding.fingerprint.to_hex(),
                csv_escape(&r.finding.file),
                r.old_line.map(|l| l.to_string()).unwrap_or_default(),
                r.new_line.map(|l| l.to_string()).unwrap_or_default(),
                csv_escape(&r.finding.function),
                csv_escape(&r.finding.variable),
                r.finding.scenario,
            ));
        }
        out
    }

    /// Renders as pretty-printed JSON: a summary object plus the rows.
    pub fn to_json(&self) -> String {
        let summary = Json::Obj(vec![
            ("new".into(), Json::Int(self.count(DeltaStatus::New) as i64)),
            (
                "fixed".into(),
                Json::Int(self.count(DeltaStatus::Fixed) as i64),
            ),
            (
                "persisting".into(),
                Json::Int(self.count(DeltaStatus::Persisting) as i64),
            ),
            (
                "churned".into(),
                Json::Int(self.count(DeltaStatus::Churned) as i64),
            ),
            (
                "suppressed".into(),
                Json::Int(self.count(DeltaStatus::Suppressed) as i64),
            ),
        ]);
        let rows = self
            .rows
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("status".into(), Json::Str(r.status.label().into())),
                    (
                        "fingerprint".into(),
                        Json::Str(r.finding.fingerprint.to_hex()),
                    ),
                    ("file".into(), Json::Str(r.finding.file.clone())),
                    (
                        "old_line".into(),
                        match r.old_line {
                            Some(l) => Json::Int(l as i64),
                            None => Json::Null,
                        },
                    ),
                    (
                        "new_line".into(),
                        match r.new_line {
                            Some(l) => Json::Int(l as i64),
                            None => Json::Null,
                        },
                    ),
                    ("function".into(), Json::Str(r.finding.function.clone())),
                    ("variable".into(), Json::Str(r.finding.variable.clone())),
                    ("scenario".into(), Json::Str(r.finding.scenario.clone())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("summary".into(), summary),
            ("rows".into(), Json::Arr(rows)),
        ])
        .to_string_pretty()
    }

    /// Every rendered byte — CSV followed by JSON — as one buffer; the
    /// determinism tests compare this across `--jobs` values and resumes.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = self.to_csv().into_bytes();
        out.extend_from_slice(self.to_json().as_bytes());
        out
    }
}

// Same quoting rules as the main report's CSV (kept private there; the two
// must not drift apart, which `delta_csv_quotes_like_report` pins).
fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Classifies old-side vs new-side findings into a [`DeltaReport`].
///
/// `old_sources` / `new_sources` are the two revisions' file contents,
/// needed for the edit-script line-map fallback; `baseline` is a set of
/// fingerprints to suppress from `new`.
pub fn classify(
    old: &[Finding],
    new: &[Finding],
    old_sources: &HashMap<String, String>,
    new_sources: &HashMap<String, String>,
    baseline: &HashSet<u64>,
) -> DeltaReport {
    // Pass 1: multiset fingerprint match, pairing in line order.
    let mut by_fp: HashMap<u64, VecDeque<usize>> = HashMap::new();
    let mut old_order: Vec<usize> = (0..old.len()).collect();
    old_order.sort_by_key(|&i| (old[i].file.clone(), old[i].line, i));
    for &i in &old_order {
        by_fp.entry(old[i].fingerprint.0).or_default().push_back(i);
    }
    let mut pair_of_new: Vec<Option<usize>> = vec![None; new.len()];
    let mut old_matched = vec![false; old.len()];
    let mut new_order: Vec<usize> = (0..new.len()).collect();
    new_order.sort_by_key(|&j| (new[j].file.clone(), new[j].line, j));
    for &j in &new_order {
        if let Some(q) = by_fp.get_mut(&new[j].fingerprint.0) {
            if let Some(i) = q.pop_front() {
                old_matched[i] = true;
                pair_of_new[j] = Some(i);
            }
        }
    }

    // Lazily built per-file line maps, shared by the pass-2 fallback and
    // the pass-3 churn split. `None` caches "no map" for files missing from
    // either side's sources.
    fn map_for<'m, 's>(
        maps: &'m mut HashMap<&'s str, Option<LineMap>>,
        file: &'s str,
        old_sources: &HashMap<String, String>,
        new_sources: &HashMap<String, String>,
    ) -> Option<&'m LineMap> {
        maps.entry(file)
            .or_insert_with(|| {
                let old_text = old_sources.get(file)?;
                let new_text = new_sources.get(file)?;
                let old_lines: Vec<String> = old_text.lines().map(str::to_string).collect();
                let new_lines: Vec<String> = new_text.lines().map(str::to_string).collect();
                Some(LineMap::between(&old_lines, &new_lines))
            })
            .as_ref()
    }
    let mut line_maps: HashMap<&str, Option<LineMap>> = HashMap::new();

    // Pass 2: line-map fallback for findings whose fingerprint changed.
    // Index the still-unmatched new findings by mapped coordinates.
    let mut loose_new: HashMap<(&str, &str, &str, &str, u32), Vec<usize>> = HashMap::new();
    for &j in &new_order {
        if pair_of_new[j].is_none() {
            let f = &new[j];
            loose_new
                .entry((
                    f.file.as_str(),
                    f.function.as_str(),
                    f.variable.as_str(),
                    f.scenario.as_str(),
                    f.line,
                ))
                .or_default()
                .push(j);
        }
    }
    let mut line_mapped_pair = vec![false; new.len()];
    let mut line_mapped = 0u64;
    for &i in &old_order {
        if old_matched[i] {
            continue;
        }
        let f = &old[i];
        let Some(map) = map_for(&mut line_maps, f.file.as_str(), old_sources, new_sources) else {
            continue;
        };
        // `nearby`: an edited definition line has no exact image in the
        // new revision, but its projected position (anchored on the
        // nearest kept line) is exactly where the re-detected finding sits.
        let Some(mapped) = map.old_to_new_nearby(f.line) else {
            continue;
        };
        let key = (
            f.file.as_str(),
            f.function.as_str(),
            f.variable.as_str(),
            f.scenario.as_str(),
            mapped,
        );
        if let Some(js) = loose_new.get_mut(&key) {
            if !js.is_empty() {
                let j = js.remove(0);
                pair_of_new[j] = Some(i);
                old_matched[i] = true;
                line_mapped_pair[j] = true;
                line_mapped += 1;
            }
        }
    }
    vc_obs::counter_add(names::DELTA_LINE_MAPPED, line_mapped);

    // Assemble rows. Pass 3 splits each matched pair into persisting vs
    // churned: a pair whose new location strays beyond CHURN_NEARBY_LINES
    // of the edit script's projection sits in reorganised code.
    let mut rows: Vec<DeltaRow> = Vec::new();
    for (j, f) in new.iter().enumerate() {
        match pair_of_new[j] {
            Some(i) => {
                let old_f = &old[i];
                let status = if line_mapped_pair[j] {
                    // A line-map pair lands exactly on the projection.
                    DeltaStatus::Persisting
                } else {
                    let projected = map_for(
                        &mut line_maps,
                        old_f.file.as_str(),
                        old_sources,
                        new_sources,
                    )
                    .map(|m| m.old_to_new_nearby(old_f.line));
                    match projected {
                        // No sources for this file: can't tell, keep the
                        // benign classification.
                        None => DeltaStatus::Persisting,
                        // The finding survived but its old neighbourhood
                        // has no plausible image — relocated wholesale.
                        Some(None) => DeltaStatus::Churned,
                        Some(Some(p)) if p.abs_diff(f.line) > CHURN_NEARBY_LINES => {
                            DeltaStatus::Churned
                        }
                        Some(Some(_)) => DeltaStatus::Persisting,
                    }
                };
                rows.push(DeltaRow {
                    status,
                    finding: f.clone(),
                    old_line: Some(old_f.line),
                    new_line: Some(f.line),
                    old_fingerprint: Some(old_f.fingerprint),
                });
            }
            None => {
                let status = if baseline.contains(&f.fingerprint.0) {
                    DeltaStatus::Suppressed
                } else {
                    DeltaStatus::New
                };
                rows.push(DeltaRow {
                    status,
                    finding: f.clone(),
                    old_line: None,
                    new_line: Some(f.line),
                    old_fingerprint: None,
                });
            }
        }
    }
    for (i, f) in old.iter().enumerate() {
        if !old_matched[i] {
            rows.push(DeltaRow {
                status: DeltaStatus::Fixed,
                finding: f.clone(),
                old_line: Some(f.line),
                new_line: None,
                old_fingerprint: Some(f.fingerprint),
            });
        }
    }
    rows.sort_by(|a, b| {
        (
            a.status,
            &a.finding.file,
            &a.finding.function,
            &a.finding.variable,
            a.new_line.or(a.old_line),
            a.finding.fingerprint,
        )
            .cmp(&(
                b.status,
                &b.finding.file,
                &b.finding.function,
                &b.finding.variable,
                b.new_line.or(b.old_line),
                b.finding.fingerprint,
            ))
    });
    DeltaReport { rows }
}

/// One side of a differential scan: the revision analysis plus its
/// fingerprinted findings and snapshot sources.
#[derive(Clone, Debug)]
pub struct RevScan {
    /// The pipeline run at the revision.
    pub rev: RevisionAnalysis,
    /// Fingerprinted findings of that run.
    pub findings: Vec<Finding>,
    /// The revision's file contents (for line mapping and baselines).
    pub sources: HashMap<String, String>,
}

/// Scans one revision through the sentinel executor and fingerprints its
/// findings.
pub fn scan_revision(
    repo: &Repository,
    commit: CommitId,
    defines: &[String],
    opts: &Options,
    sconf: &SentinelConfig,
    obs: ObsSession,
) -> Result<RevScan, BuildError> {
    let rev = run_at_commit(repo, commit, defines, opts, sconf, obs)?;
    let findings = fingerprint_ranked(&rev.prog, &rev.analysis.ranked);
    let sources = repo.snapshot_at(commit);
    Ok(RevScan {
        rev,
        findings,
        sources,
    })
}

/// The result of a full differential scan.
#[derive(Clone, Debug)]
pub struct DeltaOutcome {
    /// The old-revision scan.
    pub from: RevScan,
    /// The new-revision scan.
    pub to: RevScan,
    /// The classified report.
    pub report: DeltaReport,
}

/// Derives the per-revision sentinel config for one side of a delta scan:
/// the shared journal path (if any) gains a `.from` / `.to` suffix so the
/// two scans journal — and resume — independently.
pub fn side_sentinel(sconf: &SentinelConfig, side: &str) -> SentinelConfig {
    let mut out = sconf.clone();
    if let Some(journal) = &sconf.journal {
        let mut name = journal.as_os_str().to_os_string();
        name.push(".");
        name.push(side);
        out.journal = Some(std::path::PathBuf::from(name));
    }
    out
}

/// Runs the full differential scan: both revisions through the sentinel
/// executor (journals suffixed `.from` / `.to`), classification, and
/// `delta.*` metrics recorded into `obs`.
pub fn delta_scan(
    repo: &Repository,
    from: CommitId,
    to: CommitId,
    defines: &[String],
    opts: &Options,
    sconf: &SentinelConfig,
    baseline: &HashSet<u64>,
    obs: ObsSession,
) -> Result<DeltaOutcome, BuildError> {
    let _guard = obs.install();
    let span = obs.span("delta.scan", "delta");
    let delta_mem = vc_obs::MemScope::enter(vc_obs::alloc::SCOPE_DELTA);
    let from_scan = scan_revision(
        repo,
        from,
        defines,
        opts,
        &side_sentinel(sconf, "from"),
        obs.clone(),
    )?;
    let to_scan = scan_revision(
        repo,
        to,
        defines,
        opts,
        &side_sentinel(sconf, "to"),
        obs.clone(),
    )?;
    let report = classify(
        &from_scan.findings,
        &to_scan.findings,
        &from_scan.sources,
        &to_scan.sources,
        baseline,
    );
    report.record_metrics();
    delta_mem.finish();
    span.end();
    Ok(DeltaOutcome {
        from: from_scan,
        to: to_scan,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sentinel::SentinelConfig;
    use vc_vcs::FileWrite;

    fn write(path: &str, content: &str) -> FileWrite {
        FileWrite {
            path: path.into(),
            content: content.into(),
        }
    }

    /// One library-retval bug: cross-scope even in a single-author history,
    /// because the callee is not defined in the project.
    fn bug_fn(name: &str) -> String {
        format!(
            "int get_{name}(void);\nint calc_{name}(void);\nvoid {name}(void) {{\nint ret = \
             get_{name}();\nret = calc_{name}();\nif (ret) {{ sink(ret); }}\n}}\n"
        )
    }

    fn clean_fn(name: &str) -> String {
        format!(
            "int get_{name}(void);\nvoid {name}(void) {{\nint ret = get_{name}();\nif (ret) {{ \
             sink(ret); }}\n}}\n"
        )
    }

    fn scan(repo: &Repository, at: CommitId) -> RevScan {
        scan_revision(
            repo,
            at,
            &[],
            &Options::paper(),
            &SentinelConfig::default(),
            ObsSession::new(),
        )
        .unwrap()
    }

    #[test]
    fn fingerprints_survive_pure_line_drift() {
        let body = format!("{}{}", bug_fn("alpha"), bug_fn("beta"));
        let mut repo = Repository::new();
        let dev = repo.add_author("dev");
        let c1 = repo.commit(dev, 1, "v1", vec![write("a.c", &body)]);
        // Ten declarations inserted above everything: every finding's line
        // shifts, nothing else changes.
        let mut padded = String::new();
        for i in 0..10 {
            padded.push_str(&format!("int pad_{i}(void);\n"));
        }
        padded.push_str(&body);
        let c2 = repo.commit(dev, 2, "pad", vec![write("a.c", &padded)]);

        let s1 = scan(&repo, c1);
        let s2 = scan(&repo, c2);
        assert_eq!(s1.findings.len(), 2);
        assert_eq!(s2.findings.len(), 2);
        let fp1: HashSet<u64> = s1.findings.iter().map(|f| f.fingerprint.0).collect();
        let fp2: HashSet<u64> = s2.findings.iter().map(|f| f.fingerprint.0).collect();
        assert_eq!(fp1, fp2, "pure drift must not move any fingerprint");
        assert_ne!(
            s1.findings.iter().map(|f| f.line).collect::<Vec<_>>(),
            s2.findings.iter().map(|f| f.line).collect::<Vec<_>>(),
            "the lines did drift — the fingerprints just didn't care"
        );
    }

    #[test]
    fn duplicate_key_findings_get_distinct_stable_ordinals() {
        // Two textually identical definitions of the same variable in one
        // function: same file/function/variable/scenario/context, so only
        // the ordinal separates them.
        let src = "int get_v(void);\nint calc_v(void);\nvoid f(void) {\nint ret = get_v();\nret = \
                   calc_v();\nsink(ret);\nret = get_v();\nret = calc_v();\nsink(ret);\n}\n";
        let mut repo = Repository::new();
        let dev = repo.add_author("dev");
        let c1 = repo.commit(dev, 1, "v1", vec![write("a.c", src)]);
        let s1 = scan(&repo, c1);
        let fps: HashSet<u64> = s1.findings.iter().map(|f| f.fingerprint.0).collect();
        assert_eq!(
            fps.len(),
            s1.findings.len(),
            "ordinals must separate duplicate keys: {:?}",
            s1.findings
        );
    }

    #[test]
    fn classify_splits_new_fixed_persisting() {
        let mut repo = Repository::new();
        let dev = repo.add_author("dev");
        let v1 = format!("{}{}", bug_fn("keep"), bug_fn("gone"));
        let c1 = repo.commit(dev, 1, "v1", vec![write("a.c", &v1)]);
        // v2: pad above, fix `gone`, add `fresh`.
        let v2 = format!(
            "int pad_a(void);\nint pad_b(void);\n{}{}{}",
            bug_fn("keep"),
            clean_fn("gone"),
            bug_fn("fresh")
        );
        let c2 = repo.commit(dev, 2, "v2", vec![write("a.c", &v2)]);

        let s1 = scan(&repo, c1);
        let s2 = scan(&repo, c2);
        let report = classify(
            &s1.findings,
            &s2.findings,
            &s1.sources,
            &s2.sources,
            &HashSet::new(),
        );
        assert_eq!(report.count(DeltaStatus::New), 1, "{:#?}", report.rows);
        assert_eq!(report.count(DeltaStatus::Fixed), 1);
        assert_eq!(report.count(DeltaStatus::Persisting), 1);
        let new_row = report
            .rows
            .iter()
            .find(|r| r.status == DeltaStatus::New)
            .unwrap();
        assert_eq!(new_row.finding.function, "fresh");
        let fixed_row = report
            .rows
            .iter()
            .find(|r| r.status == DeltaStatus::Fixed)
            .unwrap();
        assert_eq!(fixed_row.finding.function, "gone");
        assert!(report.has_new());
    }

    #[test]
    fn baseline_suppresses_known_fingerprints() {
        let mut repo = Repository::new();
        let dev = repo.add_author("dev");
        let c1 = repo.commit(dev, 1, "v1", vec![write("a.c", &bug_fn("old"))]);
        let v2 = format!("{}{}", bug_fn("old"), bug_fn("fresh"));
        let c2 = repo.commit(dev, 2, "v2", vec![write("a.c", &v2)]);
        let s1 = scan(&repo, c1);
        let s2 = scan(&repo, c2);
        let fresh_fp = s2
            .findings
            .iter()
            .find(|f| f.function == "fresh")
            .unwrap()
            .fingerprint
            .0;
        let baseline: HashSet<u64> = [fresh_fp].into_iter().collect();
        let report = classify(
            &s1.findings,
            &s2.findings,
            &s1.sources,
            &s2.sources,
            &baseline,
        );
        assert_eq!(report.count(DeltaStatus::New), 0);
        assert_eq!(report.count(DeltaStatus::Suppressed), 1);
        assert!(!report.has_new(), "suppressed findings do not gate CI");
    }

    #[test]
    fn line_map_fallback_matches_edited_context() {
        // The definition line itself changes (`get_x()` → `get_x2()`), so
        // the fingerprint changes; the diff line map still pairs old and
        // new because the surrounding function is unchanged.
        let v1 = "int get_x(void);\nint get_x2(void);\nint calc_x(void);\nvoid f(void) {\nint ret \
                  = get_x();\nret = calc_x();\nsink(ret);\n}\n";
        let v2 = "int get_x(void);\nint get_x2(void);\nint calc_x(void);\nvoid f(void) {\nint ret \
                  = get_x2();\nret = calc_x();\nsink(ret);\n}\n";
        let mut repo = Repository::new();
        let dev = repo.add_author("dev");
        let c1 = repo.commit(dev, 1, "v1", vec![write("a.c", v1)]);
        let c2 = repo.commit(dev, 2, "v2", vec![write("a.c", v2)]);
        let s1 = scan(&repo, c1);
        let s2 = scan(&repo, c2);
        assert_eq!(s1.findings.len(), 1);
        assert_eq!(s2.findings.len(), 1);
        assert_ne!(
            s1.findings[0].fingerprint, s2.findings[0].fingerprint,
            "context edit moves the fingerprint — that's the case under test"
        );
        let obs = ObsSession::new();
        let report = {
            let _g = obs.install();
            classify(
                &s1.findings,
                &s2.findings,
                &s1.sources,
                &s2.sources,
                &HashSet::new(),
            )
        };
        assert_eq!(
            report.count(DeltaStatus::Persisting),
            1,
            "{:#?}",
            report.rows
        );
        assert_eq!(report.count(DeltaStatus::New), 0);
        assert_eq!(report.count(DeltaStatus::Fixed), 0);
        assert_eq!(obs.registry.counter(names::DELTA_LINE_MAPPED), 1);
    }

    #[test]
    fn relocated_function_classifies_as_churned() {
        // `alpha` moves from the top of the file to the bottom, past two
        // stable functions — same fingerprint, but its projected position
        // (through the edit script) is nowhere near where it resurfaces.
        let v1 = format!("{}{}{}", bug_fn("alpha"), bug_fn("s1"), bug_fn("s2"));
        let v2 = format!("{}{}{}", bug_fn("s1"), bug_fn("s2"), bug_fn("alpha"));
        let mut repo = Repository::new();
        let dev = repo.add_author("dev");
        let c1 = repo.commit(dev, 1, "v1", vec![write("a.c", &v1)]);
        let c2 = repo.commit(dev, 2, "move alpha last", vec![write("a.c", &v2)]);
        let s1 = scan(&repo, c1);
        let s2 = scan(&repo, c2);
        let obs = ObsSession::new();
        let report = {
            let _g = obs.install();
            classify(
                &s1.findings,
                &s2.findings,
                &s1.sources,
                &s2.sources,
                &HashSet::new(),
            )
        };
        assert_eq!(report.count(DeltaStatus::Churned), 1, "{:#?}", report.rows);
        assert_eq!(report.count(DeltaStatus::Persisting), 2);
        assert_eq!(report.count(DeltaStatus::New), 0);
        assert_eq!(report.count(DeltaStatus::Fixed), 0);
        let churned = report
            .rows
            .iter()
            .find(|r| r.status == DeltaStatus::Churned)
            .unwrap();
        assert_eq!(churned.finding.function, "alpha");
        assert_eq!(
            churned.old_fingerprint,
            Some(churned.finding.fingerprint),
            "a fingerprint-matched pair carries its own fingerprint over"
        );
        {
            let _g = obs.install();
            report.record_metrics();
        }
        assert_eq!(obs.registry.counter(names::DELTA_CHURNED), 1);
        assert!(
            !report.has_new(),
            "churn is telemetry, not a CI gate condition"
        );
        assert!(report.to_csv().contains("churned,"));
        assert!(report.to_json().contains("\"churned\": 1"));
    }

    #[test]
    fn pure_drift_is_persisting_not_churned() {
        // Ten pad lines above everything: the projection tracks the drift
        // exactly, so nothing may be reported as churned.
        let body = format!("{}{}", bug_fn("alpha"), bug_fn("beta"));
        let mut repo = Repository::new();
        let dev = repo.add_author("dev");
        let c1 = repo.commit(dev, 1, "v1", vec![write("a.c", &body)]);
        let mut padded = String::new();
        for i in 0..10 {
            padded.push_str(&format!("int pad_{i}(void);\n"));
        }
        padded.push_str(&body);
        let c2 = repo.commit(dev, 2, "pad", vec![write("a.c", &padded)]);
        let s1 = scan(&repo, c1);
        let s2 = scan(&repo, c2);
        let report = classify(
            &s1.findings,
            &s2.findings,
            &s1.sources,
            &s2.sources,
            &HashSet::new(),
        );
        assert_eq!(report.count(DeltaStatus::Churned), 0, "{:#?}", report.rows);
        assert_eq!(report.count(DeltaStatus::Persisting), 2);
    }

    #[test]
    fn self_delta_reports_zero_new_zero_fixed() {
        let mut repo = Repository::new();
        let dev = repo.add_author("dev");
        let body = format!("{}{}", bug_fn("a1"), bug_fn("a2"));
        let c1 = repo.commit(dev, 1, "v1", vec![write("a.c", &body)]);
        let obs = ObsSession::new();
        let outcome = delta_scan(
            &repo,
            c1,
            c1,
            &[],
            &Options::paper(),
            &SentinelConfig::default(),
            &HashSet::new(),
            obs.clone(),
        )
        .unwrap();
        assert_eq!(outcome.report.count(DeltaStatus::New), 0);
        assert_eq!(outcome.report.count(DeltaStatus::Fixed), 0);
        assert_eq!(outcome.report.count(DeltaStatus::Persisting), 2);
        assert_eq!(obs.registry.counter(names::DELTA_PERSISTING), 2);
        assert_eq!(obs.registry.counter(names::DELTA_NEW), 0);
        assert_eq!(obs.registry.counter(names::DELTA_FIXED), 0);
    }

    #[test]
    fn delta_csv_quotes_like_report() {
        // The delta CSV must keep the same quoting rules as the main
        // report (commas, quotes, and newlines all force quoting).
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_escape("two\nlines"), "\"two\nlines\"");
        assert_eq!(csv_escape("cr\rhere"), "\"cr\rhere\"");
    }

    #[test]
    fn fingerprint_hex_roundtrips() {
        let fp = fingerprint_of("a.c", "f", "x", "retval", "int x = g();", 1);
        assert_eq!(Fingerprint::parse_hex(&fp.to_hex()), Some(fp));
        assert_eq!(fp.to_hex().len(), 16);
        assert_eq!(Fingerprint::parse_hex("not-hex"), None);
    }
}
