//! # valuecheck — cross-scope unused-definition bug detection
//!
//! A from-scratch reproduction of **ValueCheck** (*Effective Bug Detection
//! with Unused Definitions*, EuroSys '24). The pipeline (Fig. 2 of the
//! paper):
//!
//! 1. [`detect`] — flow-sensitive, field-sensitive liveness with the
//!    define-set extension of Fig. 4, over the `vc-ir` load/store IR, with
//!    alias suppression from `vc-pointer`;
//! 2. [`authorship`] — per-scenario cross-scope determination against a
//!    `vc-vcs` history (§4.2);
//! 3. [`prune`] — the four false-positive patterns of §5, pipelined;
//! 4. [`rank`] — degree-of-knowledge familiarity ranking (§6).
//!
//! [`pipeline::run`] ties the stages together; [`incremental`] provides the
//! per-commit mode of §8.6; [`harden`] supplies the fault-isolation,
//! budget, and graceful-degradation layer that keeps a run alive on
//! malformed or pathological input; [`sentinel`] runs detection under a
//! supervised parallel executor with crash-safe journaled checkpoints
//! ([`pipeline::run_sentinel`], `vcheck --jobs/--journal/--resume`);
//! [`delta`] scans two revisions and classifies every finding as
//! new/fixed/persisting/churned using drift-stable fingerprints
//! (`vcheck delta --from REV --to REV`); [`history`] replays every commit
//! and drives each fingerprint through the born → persisting → churned →
//! fixed | suppressed lifecycle, persisting the event stream in a
//! [`lifedb::LifeDb`] with suppression from [`suppress`]
//! (`vcheck history`).
//!
//! # Examples
//!
//! ```
//! use valuecheck::pipeline::{run, Options};
//! use vc_ir::Program;
//! use vc_vcs::{FileWrite, Repository};
//!
//! let src = "void f(void) {\nint x = 1;\nx = 2;\nuse(x);\n}\n";
//! let prog = Program::build(&[("a.c", src)], &[]).unwrap();
//! let mut repo = Repository::new();
//! let alice = repo.add_author("alice");
//! let bob = repo.add_author("bob");
//! repo.commit(alice, 1, "init", vec![FileWrite { path: "a.c".into(), content: src.into() }]);
//! // bob rewrites the overwriting line.
//! let patched = src.replace("x = 2;", "x = 2; ");
//! repo.commit(bob, 2, "rework", vec![FileWrite { path: "a.c".into(), content: patched }]);
//!
//! let analysis = run(&prog, &repo, &Options::paper());
//! assert_eq!(analysis.detected(), 1);
//! ```

pub mod authorship;
pub mod candidate;
pub mod delta;
pub mod detect;
pub mod eventlog;
pub mod harden;
pub mod history;
pub mod incremental;
pub mod lifedb;
pub mod pipeline;
pub mod project;
pub mod prune;
pub mod rank;
pub mod report;
pub mod sentinel;
pub mod serve;
pub mod suppress;

pub use authorship::{
    Attributed,
    AuthorshipCtx, //
};
pub use candidate::{
    Candidate,
    Scenario, //
};
pub use delta::{
    DeltaReport,
    DeltaStatus,
    Fingerprint, //
};
pub use detect::{
    detect_function,
    detect_program,
    DetectConfig, //
};
pub use harden::{
    FailStage,
    FailureRecord,
    HardenConfig, //
};
pub use history::{
    history_scan,
    HistoryOutcome, //
};
pub use lifedb::{
    Funnel,
    LifeDb,
    LifeEvent,
    LifeEventKind, //
};
pub use pipeline::{
    run,
    run_sentinel,
    Analysis,
    Options, //
};
pub use prune::{
    PruneConfig,
    PruneReason, //
};
pub use rank::{
    RankConfig,
    Ranked, //
};
pub use report::Report;
pub use sentinel::{
    CrashPlan,
    SentinelConfig, //
};
pub use suppress::{
    InlineSuppressions,
    SuppressStore, //
};
