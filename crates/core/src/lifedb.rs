//! The findings database: one finding's lifecycle across a whole history.
//!
//! `vcheck history` replays every commit of a repository and drives each
//! drift-stable fingerprint through an explicit state machine:
//!
//! ```text
//! born ──► persisting ──► churned ──► … ──► fixed | suppressed
//! ```
//!
//! A *track* is one finding followed across revisions; its id is the
//! fingerprint it was **born** with (later revisions may re-key the
//! current fingerprint via the line-map fallback, the track id never
//! moves). Every commit appends exactly one lifecycle event per live
//! track — `born`, `persisting`, or `churned` — plus a `suppressed` event
//! when an annotation or store entry covers it at that commit, and a
//! final `fixed` event at the commit where it disappears. A track's
//! **final state** is the kind of its last event: `fixed`, `suppressed`,
//! or (anything else) still live.
//!
//! The database is a compact append-only text file with the same
//! discipline as the snapshot store: version header, tab-separated
//! records, trailing FNV-1a checksum, atomic save, never-failing load
//! (degrading to empty under the shared `harden.snapshot_*` counters).
//! Because the replay classifies rows in canonical order, the serialized
//! bytes are identical for any `--jobs` value and across `--resume`.
//!
//! Beyond raw events the DB records one [`CommitAgg`] per commit — the
//! candidate funnel including the per-pattern prune counts — and derives
//! [`ScenarioStats`] per scenario: survival time, fix rate, and churn
//! rate. A pattern whose findings are never fixed but churn forever is
//! a false-positive generator; the fix/churn rates are the per-pattern
//! precision telemetry the paper's Table 4 measures by hand.

use std::{
    collections::{
        BTreeMap,
        HashMap, //
    },
    path::Path,
};

use vc_obs::{
    names,
    Json, //
};
use vc_vcs::CommitId;

use crate::{
    delta::Fingerprint,
    incremental::content_hash, //
};

/// On-disk format version of the lifecycle DB.
pub const LIFEDB_FILE_VERSION: u32 = 1;

/// What happened to one track at one commit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LifeEventKind {
    /// First sighting.
    Born,
    /// Still present, at (or near) its projected location.
    Persisting,
    /// Still present, but relocated beyond the churn threshold.
    Churned,
    /// Covered by an inline annotation or a suppression-store entry.
    Suppressed,
    /// Disappeared at this commit.
    Fixed,
}

impl LifeEventKind {
    /// Stable lower-case label (DB and JSON field).
    pub fn label(self) -> &'static str {
        match self {
            LifeEventKind::Born => "born",
            LifeEventKind::Persisting => "persisting",
            LifeEventKind::Churned => "churned",
            LifeEventKind::Suppressed => "suppressed",
            LifeEventKind::Fixed => "fixed",
        }
    }

    /// Parses a label back.
    pub fn parse(s: &str) -> Option<LifeEventKind> {
        Some(match s {
            "born" => LifeEventKind::Born,
            "persisting" => LifeEventKind::Persisting,
            "churned" => LifeEventKind::Churned,
            "suppressed" => LifeEventKind::Suppressed,
            "fixed" => LifeEventKind::Fixed,
            _ => return None,
        })
    }
}

/// One appended lifecycle event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LifeEvent {
    /// The commit the event happened at.
    pub commit: CommitId,
    /// Track id: the fingerprint the finding was born with.
    pub track: Fingerprint,
    /// The finding's fingerprint *at this commit* (diverges from the
    /// track id after a line-map re-key).
    pub fingerprint: Fingerprint,
    /// What happened.
    pub kind: LifeEventKind,
    /// Coordinates at this commit (old-revision coordinates for `fixed`).
    pub file: String,
    /// 1-based definition line.
    pub line: u32,
    /// Containing function.
    pub function: String,
    /// Variable name.
    pub variable: String,
    /// Scenario label.
    pub scenario: String,
}

/// The candidate funnel of one replayed commit, prune patterns broken out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitAgg {
    /// The commit.
    pub commit: CommitId,
    /// Raw unused definitions detected.
    pub raw: u64,
    /// After the cross-scope filter.
    pub cross_scope: u64,
    /// Pruned per pattern, in [`PruneReason::ALL`](crate::prune::PruneReason::ALL) order:
    /// `(label, count)`.
    pub pruned: Vec<(String, u64)>,
    /// Findings reported at the commit.
    pub reported: u64,
}

/// A track's final state, per the last event on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FinalState {
    /// Last event was `fixed`.
    Fixed,
    /// Last event was `suppressed`.
    Suppressed,
    /// Anything else: still live (and unsuppressed) at head.
    Live,
}

impl FinalState {
    /// Stable lower-case label.
    pub fn label(self) -> &'static str {
        match self {
            FinalState::Fixed => "fixed",
            FinalState::Suppressed => "suppressed",
            FinalState::Live => "live",
        }
    }
}

/// The lifecycle funnel: every born track ends in exactly one bucket.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Funnel {
    /// Distinct tracks born across the history.
    pub born: u64,
    /// Tracks whose last event is `fixed`.
    pub fixed: u64,
    /// Tracks suppressed at head.
    pub suppressed: u64,
    /// Tracks live and unsuppressed at head.
    pub live: u64,
}

impl Funnel {
    /// The balance invariant the CI step asserts.
    pub fn balances(&self) -> bool {
        self.born == self.fixed + self.suppressed + self.live
    }
}

/// Per-scenario precision telemetry derived from the event stream.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScenarioStats {
    /// Tracks born with this scenario.
    pub born: u64,
    /// Tracks fixed.
    pub fixed: u64,
    /// Tracks suppressed at head.
    pub suppressed: u64,
    /// Tracks live at head.
    pub live: u64,
    /// `persisting` events.
    pub persist_events: u64,
    /// `churned` events.
    pub churn_events: u64,
    /// Sum over tracks of commits survived (birth inclusive, so a track
    /// born and fixed in consecutive commits survived 1).
    pub survival_commits: u64,
    /// `fixed / born` — how often developers actually fix the pattern.
    pub fix_rate: f64,
    /// `churned / (persisting + churned)` — how often a surviving finding
    /// rides along code reorganisations instead of being addressed; a
    /// proxy false-positive score.
    pub churn_rate: f64,
}

/// The append-only findings database.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LifeDb {
    /// Events in replay order (commit-major, canonical row order within).
    pub events: Vec<LifeEvent>,
    /// One funnel record per replayed commit.
    pub aggs: Vec<CommitAgg>,
}

impl LifeDb {
    /// Appends one event, counting it under `life.db.events`.
    pub fn push_event(&mut self, event: LifeEvent) {
        vc_obs::counter_inc(names::LIFE_DB_EVENTS);
        self.events.push(event);
    }

    /// Final state per track, by last event.
    pub fn final_states(&self) -> BTreeMap<Fingerprint, FinalState> {
        let mut last: BTreeMap<Fingerprint, LifeEventKind> = BTreeMap::new();
        for e in &self.events {
            last.insert(e.track, e.kind);
        }
        last.into_iter()
            .map(|(track, kind)| {
                let state = match kind {
                    LifeEventKind::Fixed => FinalState::Fixed,
                    LifeEventKind::Suppressed => FinalState::Suppressed,
                    _ => FinalState::Live,
                };
                (track, state)
            })
            .collect()
    }

    /// The lifecycle funnel over all tracks.
    pub fn funnel(&self) -> Funnel {
        let mut f = Funnel::default();
        for (_, state) in self.final_states() {
            f.born += 1;
            match state {
                FinalState::Fixed => f.fixed += 1,
                FinalState::Suppressed => f.suppressed += 1,
                FinalState::Live => f.live += 1,
            }
        }
        f
    }

    /// Per-scenario stats. A track's scenario is taken from its birth
    /// event (scenarios are part of the fingerprint, so they never change
    /// within a track).
    pub fn scenario_stats(&self) -> BTreeMap<String, ScenarioStats> {
        let finals = self.final_states();
        let mut stats: BTreeMap<String, ScenarioStats> = BTreeMap::new();
        let mut scenario_of: HashMap<Fingerprint, String> = HashMap::new();
        let mut events_of: HashMap<Fingerprint, u64> = HashMap::new();
        for e in &self.events {
            scenario_of
                .entry(e.track)
                .or_insert_with(|| e.scenario.clone());
            let s = stats.entry(e.scenario.clone()).or_default();
            match e.kind {
                LifeEventKind::Persisting => s.persist_events += 1,
                LifeEventKind::Churned => s.churn_events += 1,
                _ => {}
            }
            // Lifecycle events only: `suppressed` piggybacks on the same
            // commit as its track's born/persisting/churned event, and
            // `fixed` marks the commit the finding is already gone from.
            if matches!(
                e.kind,
                LifeEventKind::Born | LifeEventKind::Persisting | LifeEventKind::Churned
            ) {
                *events_of.entry(e.track).or_default() += 1;
            }
        }
        for (track, state) in finals {
            let Some(scenario) = scenario_of.get(&track) else {
                continue;
            };
            let s = stats.entry(scenario.clone()).or_default();
            s.born += 1;
            s.survival_commits += events_of.get(&track).copied().unwrap_or(0);
            match state {
                FinalState::Fixed => s.fixed += 1,
                FinalState::Suppressed => s.suppressed += 1,
                FinalState::Live => s.live += 1,
            }
        }
        for s in stats.values_mut() {
            if s.born > 0 {
                s.fix_rate = s.fixed as f64 / s.born as f64;
            }
            let survived = s.persist_events + s.churn_events;
            if survived > 0 {
                s.churn_rate = s.churn_events as f64 / survived as f64;
            }
        }
        stats
    }

    /// Total pruned per pattern over the whole replay, in first-seen
    /// (pipeline) order.
    pub fn prune_totals(&self) -> Vec<(String, u64)> {
        let mut order: Vec<String> = Vec::new();
        let mut totals: HashMap<String, u64> = HashMap::new();
        for agg in &self.aggs {
            for (label, n) in &agg.pruned {
                if !totals.contains_key(label) {
                    order.push(label.clone());
                }
                *totals.entry(label.clone()).or_default() += n;
            }
        }
        order
            .into_iter()
            .map(|l| {
                let n = totals[&l];
                (l, n)
            })
            .collect()
    }

    /// Serialises the DB (including its checksum line). The byte output is
    /// canonical: replays with any worker count produce identical files.
    pub fn to_text(&self) -> String {
        let mut out = format!("vcheck-lifedb v{LIFEDB_FILE_VERSION}\n");
        for e in &self.events {
            out.push_str(&format!(
                "event {}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                e.commit.0,
                e.track.to_hex(),
                e.fingerprint.to_hex(),
                e.kind.label(),
                e.file,
                e.line,
                e.function,
                e.variable,
                e.scenario
            ));
        }
        for a in &self.aggs {
            let pruned = a
                .pruned
                .iter()
                .map(|(l, n)| format!("{l}={n}"))
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "agg {}\t{}\t{}\t{}\t{}\n",
                a.commit.0, a.raw, a.cross_scope, pruned, a.reported
            ));
        }
        out.push_str(&format!("checksum {:016x}\n", content_hash(&out)));
        out
    }

    /// Writes the DB atomically (temp file + fsync + rename).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        use std::io::Write as _;
        let out = self.to_text();
        let file_name = path
            .file_name()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no file name"))?;
        let tmp = path.with_file_name(format!(
            ".{}.tmp.{}",
            file_name.to_string_lossy(),
            std::process::id()
        ));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(out.as_bytes())?;
            f.sync_all()?;
        }
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        if let Some(dir) = path.parent() {
            if let Ok(d) = std::fs::File::open(if dir.as_os_str().is_empty() {
                Path::new(".")
            } else {
                dir
            }) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Loads a DB from disk. **Never fails**: missing → empty; a checksum
    /// mismatch degrades to empty under `harden.snapshot_corrupt`, any
    /// other defect under `harden.snapshot_recovered` (the DB shares the
    /// snapshot store's hardening counters — same format family, same
    /// failure modes).
    pub fn load(path: &Path) -> LifeDb {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(_) => return LifeDb::default(),
        };
        let Some((body, sum)) = split_checksum(&text) else {
            vc_obs::counter_inc(names::HARDEN_SNAPSHOT_RECOVERED);
            return LifeDb::default();
        };
        if content_hash(body) != sum {
            vc_obs::counter_inc(names::HARDEN_SNAPSHOT_CORRUPT);
            return LifeDb::default();
        }
        match Self::parse(body) {
            Some(db) => db,
            None => {
                vc_obs::counter_inc(names::HARDEN_SNAPSHOT_RECOVERED);
                LifeDb::default()
            }
        }
    }

    fn parse(text: &str) -> Option<LifeDb> {
        let mut lines = text.lines();
        let version = lines.next()?.strip_prefix("vcheck-lifedb v")?;
        if version.parse::<u32>().ok()? != LIFEDB_FILE_VERSION {
            return None;
        }
        let mut db = LifeDb::default();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            if let Some(rec) = line.strip_prefix("event ") {
                let mut p = rec.split('\t');
                let event = LifeEvent {
                    commit: CommitId(p.next()?.parse().ok()?),
                    track: Fingerprint::parse_hex(p.next()?)?,
                    fingerprint: Fingerprint::parse_hex(p.next()?)?,
                    kind: LifeEventKind::parse(p.next()?)?,
                    file: p.next()?.to_string(),
                    line: p.next()?.parse().ok()?,
                    function: p.next()?.to_string(),
                    variable: p.next()?.to_string(),
                    scenario: p.next()?.to_string(),
                };
                if p.next().is_some() {
                    return None;
                }
                db.events.push(event);
            } else if let Some(rec) = line.strip_prefix("agg ") {
                let mut p = rec.split('\t');
                let commit = CommitId(p.next()?.parse().ok()?);
                let raw = p.next()?.parse().ok()?;
                let cross_scope = p.next()?.parse().ok()?;
                let pruned_field = p.next()?;
                let reported = p.next()?.parse().ok()?;
                if p.next().is_some() {
                    return None;
                }
                let mut pruned = Vec::new();
                if !pruned_field.is_empty() {
                    for pair in pruned_field.split(',') {
                        let (label, n) = pair.split_once('=')?;
                        pruned.push((label.to_string(), n.parse().ok()?));
                    }
                }
                db.aggs.push(CommitAgg {
                    commit,
                    raw,
                    cross_scope,
                    pruned,
                    reported,
                });
            } else {
                return None;
            }
        }
        Some(db)
    }

    /// The lifecycle funnel and per-scenario stats as a terminal table
    /// (the `vcheck history --stats` rendering).
    pub fn render_funnel(&self) -> String {
        let f = self.funnel();
        let mut out = String::new();
        out.push_str(&format!(
            "lifecycle funnel ({} commits, {} events)\n",
            self.aggs.len(),
            self.events.len()
        ));
        out.push_str(&format!("  born        {:>6}\n", f.born));
        out.push_str(&format!("  fixed       {:>6}\n", f.fixed));
        out.push_str(&format!("  suppressed  {:>6}\n", f.suppressed));
        out.push_str(&format!("  live        {:>6}\n", f.live));
        let stats = self.scenario_stats();
        if !stats.is_empty() {
            out.push_str(
                "  scenario       born  fixed   supp   live  fix-rate  churn-rate  survival\n",
            );
            for (scenario, s) in &stats {
                let avg_survival = if s.born > 0 {
                    s.survival_commits as f64 / s.born as f64
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "  {:<12} {:>6} {:>6} {:>6} {:>6}  {:>8.2}  {:>10.2}  {:>8.1}\n",
                    scenario,
                    s.born,
                    s.fixed,
                    s.suppressed,
                    s.live,
                    s.fix_rate,
                    s.churn_rate,
                    avg_survival
                ));
            }
        }
        let pruned = self.prune_totals();
        if !pruned.is_empty() {
            out.push_str("  pruned over history:");
            for (label, n) in &pruned {
                out.push_str(&format!(" {label}={n}"));
            }
            out.push('\n');
        }
        out
    }

    /// The `--lifecycle-json` export: versioned and environment-stamped
    /// like the `--metrics-json` export, with the funnel, per-scenario
    /// stats, per-pattern prune totals, and the full event stream.
    pub fn to_json_export(&self) -> Json {
        let f = self.funnel();
        let funnel = Json::Obj(vec![
            ("born".into(), Json::Int(f.born as i64)),
            ("fixed".into(), Json::Int(f.fixed as i64)),
            ("suppressed".into(), Json::Int(f.suppressed as i64)),
            ("live".into(), Json::Int(f.live as i64)),
        ]);
        let scenarios = Json::Obj(
            self.scenario_stats()
                .into_iter()
                .map(|(scenario, s)| {
                    (
                        scenario,
                        Json::Obj(vec![
                            ("born".into(), Json::Int(s.born as i64)),
                            ("fixed".into(), Json::Int(s.fixed as i64)),
                            ("suppressed".into(), Json::Int(s.suppressed as i64)),
                            ("live".into(), Json::Int(s.live as i64)),
                            ("persist_events".into(), Json::Int(s.persist_events as i64)),
                            ("churn_events".into(), Json::Int(s.churn_events as i64)),
                            (
                                "survival_commits".into(),
                                Json::Int(s.survival_commits as i64),
                            ),
                            ("fix_rate".into(), Json::Float(s.fix_rate)),
                            ("churn_rate".into(), Json::Float(s.churn_rate)),
                        ]),
                    )
                })
                .collect(),
        );
        let pruned = Json::Obj(
            self.prune_totals()
                .into_iter()
                .map(|(l, n)| (l, Json::Int(n as i64)))
                .collect(),
        );
        let events = Json::Arr(
            self.events
                .iter()
                .map(|e| {
                    Json::Obj(vec![
                        ("commit".into(), Json::Int(e.commit.0 as i64)),
                        ("track".into(), Json::Str(e.track.to_hex())),
                        ("fingerprint".into(), Json::Str(e.fingerprint.to_hex())),
                        ("kind".into(), Json::Str(e.kind.label().into())),
                        ("file".into(), Json::Str(e.file.clone())),
                        ("line".into(), Json::Int(e.line as i64)),
                        ("function".into(), Json::Str(e.function.clone())),
                        ("variable".into(), Json::Str(e.variable.clone())),
                        ("scenario".into(), Json::Str(e.scenario.clone())),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            (
                "schema_version".into(),
                Json::Int(vc_obs::METRICS_SCHEMA_VERSION),
            ),
            ("env".into(), Json::Str(vc_obs::env_fingerprint())),
            ("commits".into(), Json::Int(self.aggs.len() as i64)),
            ("funnel".into(), funnel),
            ("scenarios".into(), scenarios),
            ("pruned".into(), pruned),
            ("events".into(), events),
        ])
    }
}

/// Splits a DB file into (body, trailing checksum).
fn split_checksum(text: &str) -> Option<(&str, u64)> {
    let trimmed = text.strip_suffix('\n')?;
    let body_end = trimmed.rfind('\n').map(|i| i + 1).unwrap_or(0);
    let sum = u64::from_str_radix(trimmed[body_end..].strip_prefix("checksum ")?, 16).ok()?;
    Some((&text[..body_end], sum))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(commit: u32, track: u64, kind: LifeEventKind, scenario: &str) -> LifeEvent {
        LifeEvent {
            commit: CommitId(commit),
            track: Fingerprint(track),
            fingerprint: Fingerprint(track),
            kind,
            file: "a.c".into(),
            line: commit + 3,
            function: "f".into(),
            variable: "ret".into(),
            scenario: scenario.into(),
        }
    }

    fn sample_db() -> LifeDb {
        let mut db = LifeDb::default();
        // Track 1: born, persists, fixed.
        db.events
            .push(event(1, 0x11, LifeEventKind::Born, "retval"));
        db.events
            .push(event(2, 0x11, LifeEventKind::Persisting, "retval"));
        db.events
            .push(event(3, 0x11, LifeEventKind::Fixed, "retval"));
        // Track 2: born, churns, suppressed at head.
        db.events
            .push(event(1, 0x22, LifeEventKind::Born, "retval"));
        db.events
            .push(event(2, 0x22, LifeEventKind::Churned, "retval"));
        db.events
            .push(event(3, 0x22, LifeEventKind::Persisting, "retval"));
        db.events
            .push(event(3, 0x22, LifeEventKind::Suppressed, "retval"));
        // Track 3: born at head, live.
        db.events.push(event(3, 0x33, LifeEventKind::Born, "param"));
        db.aggs = vec![
            CommitAgg {
                commit: CommitId(1),
                raw: 5,
                cross_scope: 3,
                pruned: vec![("cursor".into(), 1)],
                reported: 2,
            },
            CommitAgg {
                commit: CommitId(2),
                raw: 4,
                cross_scope: 3,
                pruned: vec![("cursor".into(), 1), ("unused_hint".into(), 1)],
                reported: 2,
            },
            CommitAgg {
                commit: CommitId(3),
                raw: 4,
                cross_scope: 3,
                pruned: vec![],
                reported: 3,
            },
        ];
        db
    }

    #[test]
    fn final_states_take_the_last_event() {
        let db = sample_db();
        let finals = db.final_states();
        assert_eq!(finals[&Fingerprint(0x11)], FinalState::Fixed);
        assert_eq!(finals[&Fingerprint(0x22)], FinalState::Suppressed);
        assert_eq!(finals[&Fingerprint(0x33)], FinalState::Live);
    }

    #[test]
    fn funnel_balances() {
        let f = sample_db().funnel();
        assert_eq!(
            f,
            Funnel {
                born: 3,
                fixed: 1,
                suppressed: 1,
                live: 1
            }
        );
        assert!(f.balances());
    }

    #[test]
    fn scenario_stats_split_fix_and_churn_rates() {
        let stats = sample_db().scenario_stats();
        let retval = &stats["retval"];
        assert_eq!(retval.born, 2);
        assert_eq!(retval.fixed, 1);
        assert_eq!(retval.suppressed, 1);
        assert_eq!(retval.live, 0);
        assert_eq!(retval.persist_events, 2);
        assert_eq!(retval.churn_events, 1);
        // Track 0x11 survived commits 1-2 (2 sightings), 0x22 commits 1-3.
        assert_eq!(retval.survival_commits, 5);
        assert!((retval.fix_rate - 0.5).abs() < 1e-9);
        assert!((retval.churn_rate - 1.0 / 3.0).abs() < 1e-9);
        let param = &stats["param"];
        assert_eq!(param.born, 1);
        assert_eq!(param.live, 1);
        assert_eq!(param.fix_rate, 0.0);
    }

    #[test]
    fn prune_totals_aggregate_in_pipeline_order() {
        assert_eq!(
            sample_db().prune_totals(),
            vec![("cursor".into(), 2), ("unused_hint".into(), 1)]
        );
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("vc-lifedb-{}-{}", std::process::id(), name))
    }

    #[test]
    fn db_roundtrips_through_disk() {
        let path = temp_path("roundtrip");
        let db = sample_db();
        db.save(&path).unwrap();
        assert_eq!(LifeDb::load(&path), db);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_db_degrades_empty() {
        let path = temp_path("corrupt");
        sample_db().save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("a.c", "b.c")).unwrap();
        let obs = vc_obs::ObsSession::new();
        let loaded = {
            let _g = obs.install();
            LifeDb::load(&path)
        };
        assert_eq!(loaded, LifeDb::default());
        assert_eq!(obs.registry.counter(names::HARDEN_SNAPSHOT_CORRUPT), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn funnel_render_mentions_every_bucket() {
        let text = sample_db().render_funnel();
        for needle in ["born", "fixed", "suppressed", "live", "retval", "cursor"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn json_export_is_versioned_and_stamped() {
        let json = sample_db().to_json_export();
        let text = json.to_string_pretty();
        assert!(text.contains("\"schema_version\""));
        assert!(text.contains("\"env\""));
        assert!(text.contains("\"funnel\""));
        assert!(text.contains("\"churn_rate\""));
    }
}
