//! Supervised parallel scan execution with crash-safe journaled checkpoints.
//!
//! The paper scans multi-million-LoC projects where a single run is long
//! enough that OOM kills, crashes, and operator interrupts are the norm.
//! [`harden`](crate::harden) isolates faults *within* a run; this module
//! makes the run itself durable and concurrent:
//!
//! - **Executor.** The per-function detection loop becomes a work queue of
//!   [`ScanUnit`]s drained by N worker threads (`vcheck --jobs N`). Each
//!   unit runs inside the existing `harden` isolation boundary; a
//!   supervisor loop enforces per-unit deadlines, requeues timed-out and
//!   panicked units with capped exponential backoff, revives poisoned
//!   workers, and converts units that exhaust their attempt budget into
//!   [`FailureRecord`]s. Results merge **deterministically** in unit
//!   (function-index) order, so report output is byte-identical regardless
//!   of `--jobs`.
//! - **Durability.** An append-only journal (`scan.journal`) records each
//!   unit's completion — candidates or permanent failure — as one
//!   checksummed record, with batched fsyncs. `vcheck --resume` replays the
//!   journal, truncates any torn tail record (counted under
//!   `sentinel.torn_record_skips`), skips completed units, and produces the
//!   same report as an uninterrupted run. A fingerprint line binds the
//!   journal to the exact program, configuration, and attempt budget it was
//!   recorded under; a mismatch discards the journal rather than mixing
//!   incompatible results.
//! - **Crash failpoint.** [`arm_crash_plan`] plants a process abort at a
//!   chosen journal offset — optionally mid-record, to manufacture torn
//!   writes — for the kill-at-random-point sweep in the workload crate.
//!
//! The demand pointer oracle is partitioned once (no solving) before any
//! unit is scheduled; components solve lazily under the oracle's own lock
//! when a unit's classification needs indirect-call callees. Component
//! solves are deterministic, so a resumed run merges bit-identical facts
//! with the replayed units.

use std::{
    collections::{BTreeMap, HashMap, VecDeque},
    fs,
    io::{self, Seek as _, Write as _},
    panic::{catch_unwind, AssertUnwindSafe},
    path::{Path, PathBuf},
    sync::{Condvar, Mutex, MutexGuard},
    thread,
    time::{Duration, Instant},
};

use vc_dataflow::summary::{
    FnSummary,
    SigInterner, //
};
use vc_ir::{
    FileId,
    FuncId,
    LineCol,
    LocalId,
    Program,
    Span,
    StoreInfo,
    VarKey, //
};
use vc_obs::{ObsSession, MAIN_TID};
use vc_pointer::demand::DemandPointer;

use crate::{
    candidate::{
        Candidate,
        Scenario, //
    },
    detect::{
        demand_oracle,
        detect_unit,
        finalize_pointer_stage,
        DetectConfig,
        DetectOutcome, //
    },
    harden::{
        self,
        FailStage,
        FailpointPlan,
        FailureRecord,
        HardenConfig, //
    },
};

/// On-disk format version of the scan journal. Bumped whenever the record
/// encoding changes; older journals are discarded, never parsed across
/// versions.
pub const JOURNAL_FILE_VERSION: u32 = 1;

/// The journal header line.
const JOURNAL_HEADER: &str = "valuecheck-journal v1";

/// Supervision and durability knobs for the parallel scan executor.
#[derive(Clone, Debug)]
pub struct SentinelConfig {
    /// Worker threads draining the unit queue. `0` means "available
    /// parallelism" (`vcheck --jobs` default).
    pub jobs: usize,
    /// Maximum attempts per unit before it is marked failed-permanent
    /// (`vcheck --retry`). Minimum 1.
    pub retry: u32,
    /// Per-unit wall-clock deadline enforced by the supervisor. A unit
    /// exceeding it is abandoned (its eventual result discarded as stale)
    /// and requeued as a fresh attempt. `None` disables supervision by
    /// deadline; the per-stage `harden` budgets still bound each attempt.
    pub unit_deadline: Option<Duration>,
    /// Base of the capped exponential backoff applied to requeued units:
    /// attempt `k` (1-based retries) waits `backoff_base * 2^(k-1)`,
    /// saturating at [`SentinelConfig::backoff_cap`].
    pub backoff_base: Duration,
    /// Upper bound of the retry backoff.
    pub backoff_cap: Duration,
    /// How many journal records may accumulate between fsyncs. `1` syncs
    /// every record; larger values batch (a crash can lose at most the
    /// unsynced tail — recovery rescans those units).
    pub fsync_every: usize,
    /// Path of the append-only scan journal. `None` runs without
    /// durability.
    pub journal: Option<PathBuf>,
    /// Replay the journal and skip completed units instead of truncating
    /// it (`vcheck --resume`).
    pub resume: bool,
    /// Extra entropy folded into the journal fingerprint by the caller
    /// (e.g. the preprocessor defines, which change the program but not
    /// the source bytes).
    pub fingerprint_salt: u64,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        Self {
            jobs: 0,
            retry: 3,
            unit_deadline: None,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(50),
            fsync_every: 16,
            journal: None,
            resume: false,
            fingerprint_salt: 0,
        }
    }
}

impl SentinelConfig {
    /// The worker count after resolving `jobs == 0` to the machine's
    /// available parallelism.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs > 0 {
            return self.jobs;
        }
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// The backoff before retry attempt `attempt` (1-based).
    fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_cap)
    }
}

/// One schedulable unit of scan work: a single function's detection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScanUnit {
    /// Function index in the program (also the journal unit key).
    pub unit: usize,
}

// ---------------------------------------------------------------------------
// Crash failpoint (the kill-at-random-point sweep's trigger)
// ---------------------------------------------------------------------------

/// A planted process abort inside the journal writer, for crash testing.
#[derive(Clone, Copy, Debug)]
pub struct CrashPlan {
    /// Abort while appending this unit record (0-based count of unit
    /// records already durably written when the abort fires).
    pub abort_at_record: usize,
    /// How many bytes of that record to write (and fsync) before aborting.
    /// `0` crashes cleanly between records; a positive value manufactures a
    /// torn record, clamped so at least the trailing newline is missing.
    pub torn_bytes: usize,
}

static CRASH_PLAN: Mutex<Option<CrashPlan>> = Mutex::new(None);

/// Arms the process-wide crash plan. The next [`JournalWriter::append`]
/// reaching the planned record writes the configured prefix, fsyncs it, and
/// calls [`std::process::abort`]. Test-only by design — the crash harness
/// re-executes itself in a child process and arms the plan there.
pub fn arm_crash_plan(plan: CrashPlan) {
    *lock(&CRASH_PLAN) = Some(plan);
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A worker that panicked while holding a lock must not cascade into
    // every other thread: the data is still usable (all writes under these
    // locks are atomic at the record level).
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Record encoding
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit, the workspace's standard content hash.
fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Field separator so ("ab","c") != ("a","bc").
    h ^= 0xFF;
    h.wrapping_mul(0x0000_0100_0000_01B3)
}

const FNV_SEED: u64 = 0xCBF2_9CE4_8422_2325;

/// Escapes a string for the tab/`|`/`,`-delimited journal grammar.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '|' => out.push_str("\\p"),
            ',' => out.push_str("\\c"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'p' => out.push('|'),
            'c' => out.push(','),
            _ => return None,
        }
    }
    Some(out)
}

fn enc_span(s: &Span) -> String {
    format!(
        "{}:{}.{}:{}.{}",
        s.file.0, s.start.line, s.start.col, s.end.line, s.end.col
    )
}

fn dec_span(s: &str) -> Option<Span> {
    let mut parts = s.split(':');
    let file = FileId(parts.next()?.parse().ok()?);
    let pos = |p: &str| -> Option<LineCol> {
        let (l, c) = p.split_once('.')?;
        Some(LineCol::new(l.parse().ok()?, c.parse().ok()?))
    };
    let start = pos(parts.next()?)?;
    let end = pos(parts.next()?)?;
    if parts.next().is_some() {
        return None;
    }
    Some(Span { file, start, end })
}

fn enc_key(k: VarKey) -> String {
    match k {
        VarKey::Local(l) => format!("L{}", l.0),
        VarKey::Field(l, f) => format!("F{}.{}", l.0, f),
    }
}

fn dec_key(s: &str) -> Option<VarKey> {
    if let Some(rest) = s.strip_prefix('L') {
        return Some(VarKey::Local(LocalId(rest.parse().ok()?)));
    }
    let rest = s.strip_prefix('F')?;
    let (l, f) = rest.split_once('.')?;
    Some(VarKey::Field(LocalId(l.parse().ok()?), f.parse().ok()?))
}

fn enc_scenario(s: &Scenario) -> String {
    match s {
        Scenario::Overwritten => "O".to_string(),
        Scenario::Param { index } => format!("P{index}"),
        Scenario::RetVal { callees } => {
            let cs: Vec<String> = callees.iter().map(|c| esc(c)).collect();
            format!("R{}", cs.join(","))
        }
    }
}

fn dec_scenario(s: &str) -> Option<Scenario> {
    if s == "O" {
        return Some(Scenario::Overwritten);
    }
    if let Some(rest) = s.strip_prefix('P') {
        return Some(Scenario::Param {
            index: rest.parse().ok()?,
        });
    }
    let rest = s.strip_prefix('R')?;
    let callees = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',')
            .map(unesc)
            .collect::<Option<Vec<String>>>()?
    };
    Some(Scenario::RetVal { callees })
}

fn enc_info(i: &StoreInfo) -> String {
    match i {
        StoreInfo::Normal => "N".to_string(),
        StoreInfo::ParamInit { index } => format!("P{index}"),
        StoreInfo::RetVal {
            callee,
            synthetic_dst,
        } => format!("R{}!{}", esc(callee), u8::from(*synthetic_dst)),
        StoreInfo::SelfOffset { delta } => format!("S{delta}"),
    }
}

fn dec_info(s: &str) -> Option<StoreInfo> {
    if s == "N" {
        return Some(StoreInfo::Normal);
    }
    if let Some(rest) = s.strip_prefix('P') {
        return Some(StoreInfo::ParamInit {
            index: rest.parse().ok()?,
        });
    }
    if let Some(rest) = s.strip_prefix('R') {
        let (callee, synth) = rest.rsplit_once('!')?;
        return Some(StoreInfo::RetVal {
            callee: unesc(callee)?,
            synthetic_dst: match synth {
                "0" => false,
                "1" => true,
                _ => return None,
            },
        });
    }
    let rest = s.strip_prefix('S')?;
    Some(StoreInfo::SelfOffset {
        delta: rest.parse().ok()?,
    })
}

/// Encodes one candidate as a `|`-separated field list. The containing
/// function (id and name) lives at the record level, not per candidate.
fn enc_candidate(c: &Candidate) -> String {
    let ows: Vec<String> = c.overwriters.iter().map(enc_span).collect();
    format!(
        "{}|{}|{}|{}|{}|{}|{}{}{}",
        enc_key(c.key),
        esc(&c.var_name),
        enc_span(&c.span),
        enc_scenario(&c.scenario),
        ows.join(","),
        enc_info(&c.info),
        u8::from(c.synthetic),
        u8::from(c.unused_attr),
        u8::from(c.low_confidence),
    )
}

fn dec_candidate(unit: usize, func_name: &str, s: &str) -> Option<Candidate> {
    let fields: Vec<&str> = s.split('|').collect();
    if fields.len() != 7 {
        return None;
    }
    let overwriters = if fields[4].is_empty() {
        Vec::new()
    } else {
        fields[4]
            .split(',')
            .map(dec_span)
            .collect::<Option<Vec<Span>>>()?
    };
    let flags = fields[6].as_bytes();
    if flags.len() != 3 || flags.iter().any(|b| *b != b'0' && *b != b'1') {
        return None;
    }
    Some(Candidate {
        func: FuncId(unit as u32),
        func_name: func_name.to_string(),
        key: dec_key(fields[0])?,
        var_name: unesc(fields[1])?,
        span: dec_span(fields[2])?,
        scenario: dec_scenario(fields[3])?,
        overwriters,
        info: dec_info(fields[5])?,
        synthetic: flags[0] == b'1',
        unused_attr: flags[1] == b'1',
        low_confidence: flags[2] == b'1',
    })
}

/// One journaled unit completion.
#[derive(Clone, Debug)]
pub enum UnitRecord {
    /// The unit scanned to completion (possibly with a cut-short liveness
    /// fixpoint, flagged by `exhausted`).
    Ok {
        /// Function index.
        unit: usize,
        /// Function name (redundant with the index, kept for humans
        /// reading the journal and for decode validation).
        func: String,
        /// Whether the liveness budget ran out (`harden.degraded.liveness`).
        exhausted: bool,
        /// The unit's candidates.
        candidates: Vec<Candidate>,
    },
    /// The unit exhausted its attempts and was marked failed-permanent.
    Fail {
        /// Function index.
        unit: usize,
        /// The failure carried into the report.
        failure: FailureRecord,
    },
}

impl UnitRecord {
    /// The unit key.
    pub fn unit(&self) -> usize {
        match self {
            UnitRecord::Ok { unit, .. } | UnitRecord::Fail { unit, .. } => *unit,
        }
    }

    fn encode_body(&self) -> String {
        match self {
            UnitRecord::Ok {
                unit,
                func,
                exhausted,
                candidates,
            } => {
                let cands: Vec<String> = candidates.iter().map(enc_candidate).collect();
                format!(
                    "ok {unit}\t{}\t{}\t{}",
                    esc(func),
                    u8::from(*exhausted),
                    cands.join("\t")
                )
            }
            UnitRecord::Fail { unit, failure } => format!(
                "fail {unit}\t{}\t{}\t{}\t{}",
                failure.stage.label(),
                esc(&failure.file),
                esc(failure.function.as_deref().unwrap_or("-")),
                esc(&failure.message),
            ),
        }
    }

    fn decode_body(body: &str) -> Option<UnitRecord> {
        if let Some(rest) = body.strip_prefix("ok ") {
            let mut fields = rest.split('\t');
            let unit: usize = fields.next()?.parse().ok()?;
            let func = unesc(fields.next()?)?;
            let exhausted = match fields.next()? {
                "0" => false,
                "1" => true,
                _ => return None,
            };
            let mut candidates = Vec::new();
            for f in fields {
                if f.is_empty() {
                    continue; // a unit with zero candidates encodes one empty field
                }
                candidates.push(dec_candidate(unit, &func, f)?);
            }
            return Some(UnitRecord::Ok {
                unit,
                func,
                exhausted,
                candidates,
            });
        }
        let rest = body.strip_prefix("fail ")?;
        let mut fields = rest.split('\t');
        let unit: usize = fields.next()?.parse().ok()?;
        let stage = FailStage::from_label(fields.next()?)?;
        let file = unesc(fields.next()?)?;
        let function = unesc(fields.next()?)?;
        let message = unesc(fields.next()?)?;
        if fields.next().is_some() {
            return None;
        }
        Some(UnitRecord::Fail {
            unit,
            failure: FailureRecord {
                stage,
                file,
                function: (function != "-").then_some(function),
                message,
            },
        })
    }

    /// The full journal line for this record: body, tab, `#`-prefixed
    /// FNV-1a checksum of the body, newline.
    fn encode_line(&self) -> String {
        let body = self.encode_body();
        let crc = fnv1a(FNV_SEED, body.as_bytes());
        format!("{body}\t#{crc:016x}\n")
    }
}

/// Splits a checksummed journal line into its verified body.
fn verify_line(line: &str) -> Option<&str> {
    let (body, crc) = line.rsplit_once("\t#")?;
    let want = u64::from_str_radix(crc, 16).ok()?;
    if crc.len() != 16 || fnv1a(FNV_SEED, body.as_bytes()) != want {
        return None;
    }
    Some(body)
}

// ---------------------------------------------------------------------------
// Journal writer
// ---------------------------------------------------------------------------

/// The append-only scan journal: one checksummed line per completed unit,
/// fsynced every [`SentinelConfig::fsync_every`] records.
#[derive(Debug)]
pub struct JournalWriter {
    file: fs::File,
    unsynced: usize,
    fsync_every: usize,
    records_written: usize,
}

impl JournalWriter {
    /// Creates a fresh journal at `path` (truncating any previous one) and
    /// durably writes the header and fingerprint lines.
    pub fn create(path: &Path, fingerprint: u64) -> io::Result<JournalWriter> {
        let mut file = fs::File::create(path)?;
        let fp_body = format!("fingerprint {fingerprint:016x}");
        let fp_crc = fnv1a(FNV_SEED, fp_body.as_bytes());
        file.write_all(format!("{JOURNAL_HEADER}\n{fp_body}\t#{fp_crc:016x}\n").as_bytes())?;
        file.sync_all()?;
        Ok(JournalWriter {
            file,
            unsynced: 0,
            fsync_every: 16,
            records_written: 0,
        })
    }

    /// Reopens an existing journal for appending after a replay, truncating
    /// any torn tail first so new records never concatenate onto a partial
    /// line.
    pub fn reopen(path: &Path, valid_bytes: u64, replayed: usize) -> io::Result<JournalWriter> {
        let mut file = fs::OpenOptions::new().write(true).read(true).open(path)?;
        file.set_len(valid_bytes)?;
        file.seek(io::SeekFrom::End(0))?;
        file.sync_all()?;
        Ok(JournalWriter {
            file,
            unsynced: 0,
            fsync_every: 16,
            records_written: replayed,
        })
    }

    /// Sets the fsync batch size.
    pub fn with_fsync_every(mut self, n: usize) -> JournalWriter {
        self.fsync_every = n.max(1);
        self
    }

    /// Appends one unit record, honouring an armed [`CrashPlan`].
    pub fn append(&mut self, rec: &UnitRecord) -> io::Result<()> {
        let line = rec.encode_line();
        if let Some(plan) = *lock(&CRASH_PLAN) {
            if self.records_written == plan.abort_at_record {
                // The planted crash: write a (possibly torn) prefix, make it
                // durable so recovery actually observes it, and die the way
                // a SIGKILL would — no unwinding, no destructors.
                let torn = plan.torn_bytes.min(line.len().saturating_sub(1));
                let _ = self.file.write_all(&line.as_bytes()[..torn]);
                let _ = self.file.sync_all();
                std::process::abort();
            }
        }
        self.file.write_all(line.as_bytes())?;
        self.records_written += 1;
        self.unsynced += 1;
        if self.unsynced >= self.fsync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Flushes the fsync batch.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Journal replay
// ---------------------------------------------------------------------------

/// The result of replaying a scan journal.
#[derive(Debug, Default)]
pub struct Replay {
    /// Completed units, keyed by unit index. First record wins on
    /// duplicates.
    pub completed: BTreeMap<usize, UnitRecord>,
    /// Byte offset of the end of the last valid record — the truncation
    /// point for reopening the journal in append mode.
    pub valid_bytes: u64,
    /// A torn (checksum-failing or non-UTF-8) final record was skipped.
    pub torn_records: usize,
    /// Checksum-failing records *before* the tail; everything at and after
    /// the first one is discarded and rescanned.
    pub corrupt_records: usize,
    /// Records naming an already-replayed unit (dropped).
    pub duplicate_records: usize,
    /// The journal was missing, unreadable, version-mismatched, or bound to
    /// a different program/config fingerprint; nothing was replayed.
    pub discarded: bool,
}

impl Replay {
    /// Replays the journal at `path`, verifying the header, fingerprint,
    /// and per-record checksums. Never fails: any invalid state degrades to
    /// "replay less" — the executor rescans whatever is not replayed.
    pub fn load(path: &Path, fingerprint: u64) -> Replay {
        let mut out = Replay::default();
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(_) => {
                out.discarded = true;
                return out;
            }
        };
        // Header line.
        let header_end = match bytes.iter().position(|b| *b == b'\n') {
            Some(i) => i + 1,
            None => {
                out.discarded = true;
                return out;
            }
        };
        if &bytes[..header_end - 1] != JOURNAL_HEADER.as_bytes() {
            out.discarded = true;
            return out;
        }
        // Fingerprint line.
        let rest = &bytes[header_end..];
        let fp_end = match rest.iter().position(|b| *b == b'\n') {
            Some(i) => i + 1,
            None => {
                out.discarded = true;
                return out;
            }
        };
        let fp_ok = std::str::from_utf8(&rest[..fp_end - 1])
            .ok()
            .and_then(verify_line)
            .and_then(|body| body.strip_prefix("fingerprint "))
            .and_then(|hex| u64::from_str_radix(hex, 16).ok())
            .map(|fp| fp == fingerprint);
        if fp_ok != Some(true) {
            out.discarded = true;
            return out;
        }
        out.valid_bytes = (header_end + fp_end) as u64;

        // Unit records.
        let mut offset = header_end + fp_end;
        while offset < bytes.len() {
            let line_end = bytes[offset..]
                .iter()
                .position(|b| *b == b'\n')
                .map(|i| offset + i + 1);
            let (chunk, complete) = match line_end {
                Some(e) => (&bytes[offset..e - 1], true),
                None => (&bytes[offset..], false),
            };
            let body = std::str::from_utf8(chunk).ok().and_then(verify_line);
            let rec = body.and_then(UnitRecord::decode_body);
            match rec {
                Some(rec) if complete => {
                    if out.completed.contains_key(&rec.unit()) {
                        out.duplicate_records += 1;
                    } else {
                        out.completed.insert(rec.unit(), rec);
                    }
                    offset = line_end.unwrap();
                    out.valid_bytes = offset as u64;
                }
                _ => {
                    // A bad record: torn if it is the file's tail, corrupt
                    // otherwise. Either way nothing after it is trusted —
                    // those units rescan.
                    if line_end.map(|e| e == bytes.len()).unwrap_or(true) {
                        out.torn_records += 1;
                    } else {
                        out.corrupt_records += 1;
                    }
                    break;
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Fingerprint
// ---------------------------------------------------------------------------

/// Binds a journal to the exact scan it checkpoints: program sources,
/// detection configuration, budgets, and the attempt budget. Two scans with
/// the same fingerprint provably schedule identical unit sets with
/// identical per-unit results.
pub fn scan_fingerprint(
    prog: &Program,
    config: DetectConfig,
    hconf: &HardenConfig,
    sconf: &SentinelConfig,
) -> u64 {
    let mut h = FNV_SEED;
    for f in prog.source.iter() {
        h = fnv1a(h, f.name.as_bytes());
        h = fnv1a(h, f.content.as_bytes());
    }
    let budget_bits = |b: &vc_obs::Budget| {
        [
            b.max_steps.unwrap_or(u64::MAX),
            b.max_time.map(|d| d.as_millis() as u64).unwrap_or(u64::MAX),
        ]
    };
    let mut scalars = vec![
        JOURNAL_FILE_VERSION as u64,
        u64::from(config.use_alias_analysis),
        u64::from(config.field_sensitive_pointers),
        u64::from(hconf.isolate),
        sconf.retry as u64,
        sconf.fingerprint_salt,
    ];
    scalars.extend(budget_bits(&hconf.liveness_budget));
    scalars.extend(budget_bits(&hconf.pointer_budget));
    for s in scalars {
        h = fnv1a(h, &s.to_le_bytes());
    }
    h
}

/// FNV-1a over a list of strings — the caller-side salt helper (`vcheck`
/// hashes its `--define` list through this).
pub fn salt_strings(items: &[String]) -> u64 {
    let mut h = FNV_SEED;
    for s in items {
        h = fnv1a(h, s.as_bytes());
    }
    h
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

/// A queued attempt of one unit. `attempt` is the unit's epoch: results
/// from older epochs (abandoned after a deadline or a worker death) are
/// discarded as stale.
#[derive(Clone, Copy, Debug)]
struct Task {
    unit: usize,
    attempt: u32,
}

#[derive(Debug)]
struct Running {
    attempt: u32,
    started: Instant,
    worker: usize,
}

#[derive(Debug)]
enum UnitOutcome {
    Ok {
        candidates: Vec<Candidate>,
        exhausted: bool,
        /// The function's summary, handed to the prune stage. `None` for
        /// journal-replayed units (summaries are not journaled; the prune
        /// stage rebuilds on demand).
        summary: Option<FnSummary>,
    },
    Fail(FailureRecord),
}

#[derive(Debug, Default)]
struct ExecState {
    ready: VecDeque<Task>,
    delayed: Vec<(Instant, Task)>,
    in_flight: HashMap<usize, Running>,
    outcomes: BTreeMap<usize, UnitOutcome>,
    remaining: usize,
    shutdown: bool,
}

struct Shared<'p> {
    prog: &'p Program,
    oracle: Option<&'p DemandPointer<'p>>,
    interner: &'p SigInterner,
    hconf: HardenConfig,
    sconf: &'p SentinelConfig,
    state: Mutex<ExecState>,
    cv: Condvar,
    journal: Option<Mutex<JournalWriter>>,
    obs: ObsSession,
    failplan: FailpointPlan,
}

impl Shared<'_> {
    /// Resolves one unit outcome under the state lock: record, journal,
    /// count down. Must be called at most once per unit.
    fn resolve(&self, state: &mut ExecState, unit: usize, outcome: UnitOutcome) {
        if let Some(j) = &self.journal {
            let rec = match &outcome {
                UnitOutcome::Ok {
                    candidates,
                    exhausted,
                    ..
                } => UnitRecord::Ok {
                    unit,
                    func: self.prog.func(FuncId(unit as u32)).name.clone(),
                    exhausted: *exhausted,
                    candidates: candidates.clone(),
                },
                UnitOutcome::Fail(failure) => UnitRecord::Fail {
                    unit,
                    failure: failure.clone(),
                },
            };
            // A failed journal write is not fatal to the scan — the run
            // completes in memory; only resumability degrades.
            let _ = lock(j).append(&rec);
        }
        state.outcomes.insert(unit, outcome);
        state.remaining -= 1;
        if state.remaining == 0 {
            state.shutdown = true;
            self.cv.notify_all();
        }
    }

    /// A unit attempt failed (panic, deadline, or dead worker): requeue it
    /// with backoff, or mark it failed-permanent once its attempts are
    /// spent. Called under the state lock.
    fn retry_or_fail(&self, state: &mut ExecState, unit: usize, attempt: u32, message: String) {
        let attempts_done = attempt + 1;
        if attempts_done < self.sconf.retry.max(1) {
            vc_obs::counter_inc(vc_obs::names::SENTINEL_RETRIES);
            let at = Instant::now() + self.sconf.backoff(attempts_done);
            state.delayed.push((
                at,
                Task {
                    unit,
                    attempt: attempts_done,
                },
            ));
        } else {
            vc_obs::counter_inc(vc_obs::names::SENTINEL_FAILED_PERMANENT);
            vc_obs::counter_inc(vc_obs::names::HARDEN_POISONED_DETECT);
            let f = self.prog.func(FuncId(unit as u32));
            self.resolve(
                state,
                unit,
                UnitOutcome::Fail(FailureRecord {
                    stage: FailStage::Detect,
                    file: self.prog.source.name(f.file).to_string(),
                    function: Some(f.name.clone()),
                    message,
                }),
            );
        }
    }

    /// Requeues everything a dead worker had in flight.
    fn reap_worker(&self, worker: usize, message: &str) {
        let mut state = lock(&self.state);
        let stuck: Vec<(usize, u32)> = state
            .in_flight
            .iter()
            .filter(|(_, r)| r.worker == worker)
            .map(|(u, r)| (*u, r.attempt))
            .collect();
        for (unit, attempt) in stuck {
            state.in_flight.remove(&unit);
            vc_obs::counter_inc(vc_obs::names::SENTINEL_REQUEUES);
            self.retry_or_fail(&mut state, unit, attempt, format!("worker died: {message}"));
        }
        self.cv.notify_all();
    }
}

/// The inner worker loop: drain tasks until shutdown. Panics escaping this
/// function (i.e. escaping the per-unit isolation boundary) poison the
/// worker; the incarnation wrapper in [`run_executor`] revives it.
fn worker_loop(shared: &Shared<'_>, worker: usize) {
    let tid = MAIN_TID + 1 + worker as u32;
    let _worker_span =
        shared
            .obs
            .tracer
            .span_on(&format!("sentinel.worker.{worker}"), "sentinel", tid);
    loop {
        let task = {
            let mut state = lock(&shared.state);
            loop {
                if let Some(task) = state.ready.pop_front() {
                    state.in_flight.insert(
                        task.unit,
                        Running {
                            attempt: task.attempt,
                            started: Instant::now(),
                            worker,
                        },
                    );
                    break task;
                }
                if state.shutdown {
                    return;
                }
                // The timeout doubles as the supervisor-less wakeup for
                // delayed (backoff) tasks.
                let (next, _) = shared
                    .cv
                    .wait_timeout(state, Duration::from_millis(1))
                    .map(|(g, t)| (g, t))
                    .unwrap_or_else(|e| {
                        let (g, t) = e.into_inner();
                        (g, t)
                    });
                state = next;
                promote_delayed(&mut state);
            }
        };

        let fid = FuncId(task.unit as u32);
        let f = shared.prog.func(fid);
        // The worker-stage failpoint fires *outside* the per-unit isolation
        // boundary: it simulates a poisoned worker, not a poisoned unit.
        harden::failpoint(FailStage::Worker, &f.name);
        let result = harden::isolated(shared.hconf.isolate, || {
            // The unit span and allocation scope live *inside* the isolation
            // boundary: a panicking unit unwinds through their drop glue, so
            // the span still flushes (tagged `panicked`) and the allocation
            // window still closes instead of silently vanishing.
            let _unit_span =
                shared
                    .obs
                    .tracer
                    .span_on(&format!("unit.{}", f.name), "sentinel", tid);
            let _unit_mem = vc_obs::MemScope::enter(vc_obs::alloc::SCOPE_WORKER);
            harden::failpoint(FailStage::Detect, &f.name);
            detect_unit(
                shared.prog,
                fid,
                shared.interner.sig_of(fid),
                shared.oracle,
                shared.hconf.liveness_budget,
            )
        });

        let mut state = lock(&shared.state);
        let current = state.in_flight.get(&task.unit).map(|r| r.attempt);
        if current != Some(task.attempt) || state.outcomes.contains_key(&task.unit) {
            // The supervisor abandoned this attempt (deadline) while we were
            // computing it; the unit lives in a newer epoch now.
            vc_obs::counter_inc(vc_obs::names::SENTINEL_STALE_RESULTS);
            continue;
        }
        state.in_flight.remove(&task.unit);
        match result {
            Ok((summary, candidates)) => {
                vc_obs::counter_inc(vc_obs::names::SENTINEL_UNITS_COMPLETED);
                let exhausted = summary.exhausted;
                shared.resolve(
                    &mut state,
                    task.unit,
                    UnitOutcome::Ok {
                        candidates,
                        exhausted,
                        summary: Some(summary),
                    },
                );
            }
            Err(message) => {
                shared.retry_or_fail(&mut state, task.unit, task.attempt, message);
            }
        }
        shared.cv.notify_all();
    }
}

/// Moves delayed (backoff) tasks whose time has come into the ready queue.
fn promote_delayed(state: &mut ExecState) {
    let now = Instant::now();
    let mut i = 0;
    while i < state.delayed.len() {
        if state.delayed[i].0 <= now {
            let (_, task) = state.delayed.swap_remove(i);
            state.ready.push_back(task);
        } else {
            i += 1;
        }
    }
    // Deterministic pickup order within a promotion batch.
    state
        .ready
        .make_contiguous()
        .sort_by_key(|t| (t.unit, t.attempt));
}

/// The supervisor loop, run on the spawning thread: promotes backoff tasks,
/// enforces per-unit deadlines, and returns when every unit is resolved.
fn supervise(shared: &Shared<'_>) {
    loop {
        {
            let mut state = lock(&shared.state);
            if state.remaining == 0 {
                state.shutdown = true;
                shared.cv.notify_all();
                return;
            }
            promote_delayed(&mut state);
            if let Some(deadline) = shared.sconf.unit_deadline {
                let late: Vec<(usize, u32)> = state
                    .in_flight
                    .iter()
                    .filter(|(_, r)| r.started.elapsed() > deadline)
                    .map(|(u, r)| (*u, r.attempt))
                    .collect();
                for (unit, attempt) in late {
                    // Abandon the attempt: the stale worker's result will be
                    // discarded by the epoch check when it eventually lands.
                    state.in_flight.remove(&unit);
                    vc_obs::counter_inc(vc_obs::names::SENTINEL_REQUEUES);
                    vc_obs::counter_inc(vc_obs::names::SENTINEL_DEADLINE_TIMEOUTS);
                    self_retry(shared, &mut state, unit, attempt, deadline);
                }
            }
            if !state.ready.is_empty() {
                shared.cv.notify_all();
            }
        }
        thread::sleep(Duration::from_micros(500));
    }
}

fn self_retry(
    shared: &Shared<'_>,
    state: &mut ExecState,
    unit: usize,
    attempt: u32,
    deadline: Duration,
) {
    shared.retry_or_fail(
        state,
        unit,
        attempt,
        format!("unit deadline exceeded ({} ms)", deadline.as_millis()),
    );
}

/// Runs the supervised parallel detection scan.
///
/// This is the parallel, durable sibling of
/// [`detect_program_hardened`](crate::detect::detect_program_hardened):
/// identical inputs produce a byte-identical [`DetectOutcome`] regardless
/// of worker count, journal presence, or how many units were replayed from
/// a previous interrupted run.
pub fn detect_program_sentinel(
    prog: &Program,
    config: DetectConfig,
    hconf: HardenConfig,
    sconf: &SentinelConfig,
) -> DetectOutcome {
    let mut out = DetectOutcome::default();
    vc_obs::counter_add(vc_obs::names::DETECT_FUNCTIONS, prog.funcs.len() as u64);
    let total = prog.funcs.len();
    vc_obs::counter_add(vc_obs::names::SENTINEL_UNITS, total as u64);

    // Demand pointer oracle: partitioned once, single-threaded, before any
    // unit; components solve lazily under the oracle's lock.
    let oracle = demand_oracle(prog, config, hconf);
    let interner = SigInterner::new(prog);

    // Journal replay (resume) or creation.
    let fingerprint = scan_fingerprint(prog, config, &hconf, sconf);
    let mut replayed: BTreeMap<usize, UnitRecord> = BTreeMap::new();
    let journal = match &sconf.journal {
        None => None,
        Some(path) => {
            let writer = if sconf.resume {
                let replay = Replay::load(path, fingerprint);
                vc_obs::counter_add(
                    vc_obs::names::SENTINEL_JOURNAL_REPLAYS,
                    u64::from(!replay.discarded),
                );
                vc_obs::counter_add(
                    vc_obs::names::SENTINEL_TORN_RECORD_SKIPS,
                    replay.torn_records as u64,
                );
                vc_obs::counter_add(
                    vc_obs::names::SENTINEL_CORRUPT_RECORDS,
                    replay.corrupt_records as u64,
                );
                vc_obs::counter_add(
                    vc_obs::names::SENTINEL_DUPLICATE_RECORDS,
                    replay.duplicate_records as u64,
                );
                if replay.discarded {
                    vc_obs::counter_inc(vc_obs::names::SENTINEL_JOURNAL_DISCARDED);
                    JournalWriter::create(path, fingerprint)
                } else {
                    // Ignore replayed units beyond the current unit range
                    // (belt and braces; the fingerprint already rules this
                    // out).
                    replayed = replay
                        .completed
                        .into_iter()
                        .filter(|(u, _)| *u < total)
                        .collect();
                    JournalWriter::reopen(path, replay.valid_bytes, replayed.len())
                }
            } else {
                JournalWriter::create(path, fingerprint)
            };
            match writer {
                Ok(w) => Some(Mutex::new(w.with_fsync_every(sconf.fsync_every))),
                Err(_) => {
                    vc_obs::counter_inc(vc_obs::names::SENTINEL_JOURNAL_OPEN_FAILURES);
                    None
                }
            }
        }
    };
    vc_obs::counter_add(
        vc_obs::names::SENTINEL_UNITS_REPLAYED,
        replayed.len() as u64,
    );
    vc_obs::counter_add(
        vc_obs::names::SENTINEL_UNITS_SCANNED,
        (total - replayed.len()) as u64,
    );

    // Queue every unit not already checkpointed, in unit order.
    let mut state = ExecState::default();
    for unit in 0..total {
        if !replayed.contains_key(&unit) {
            state.ready.push_back(Task { unit, attempt: 0 });
        }
    }
    state.remaining = state.ready.len();

    let shared = Shared {
        prog,
        oracle: oracle.as_ref(),
        interner: &interner,
        hconf,
        sconf,
        state: Mutex::new(state),
        cv: Condvar::new(),
        journal,
        obs: ObsSession::current_or_new(),
        failplan: FailpointPlan::current(),
    };

    if lock(&shared.state).remaining > 0 {
        let jobs = sconf.effective_jobs().clamp(1, total.max(1));
        thread::scope(|scope| {
            for worker in 0..jobs {
                let shared = &shared;
                scope.spawn(move || {
                    let _obs = shared.obs.install();
                    let _fp = shared.failplan.install();
                    // Incarnation wrapper: a panic that escapes the unit
                    // isolation boundary poisons the worker; revive it and
                    // requeue whatever it was running.
                    loop {
                        match catch_unwind(AssertUnwindSafe(|| worker_loop(shared, worker))) {
                            Ok(()) => break,
                            Err(payload) => {
                                if !shared.hconf.isolate {
                                    std::panic::resume_unwind(payload);
                                }
                                vc_obs::counter_inc(vc_obs::names::SENTINEL_WORKER_REPLACED);
                                let msg = harden::panic_message(payload);
                                shared.reap_worker(worker, &msg);
                            }
                        }
                    }
                });
            }
            supervise(&shared);
        });
    }

    // Deterministic merge: journal-replayed and freshly-scanned units
    // interleave in unit (function-index) order, which is exactly the
    // sequential loop's order — the report is byte-identical for any
    // worker count and any resume point.
    let outcomes = std::mem::take(&mut lock(&shared.state).outcomes);
    let mut merged: BTreeMap<usize, UnitOutcome> = outcomes;
    for (unit, rec) in replayed {
        let outcome = match rec {
            UnitRecord::Ok {
                exhausted,
                candidates,
                ..
            } => UnitOutcome::Ok {
                candidates,
                exhausted,
                summary: None,
            },
            UnitRecord::Fail { failure, .. } => UnitOutcome::Fail(failure),
        };
        merged.insert(unit, outcome);
    }
    for (unit, outcome) in merged {
        match outcome {
            UnitOutcome::Ok {
                candidates,
                exhausted,
                summary,
            } => {
                if exhausted {
                    out.liveness_degraded += 1;
                    vc_obs::counter_inc(vc_obs::names::HARDEN_DEGRADED_LIVENESS);
                }
                if let Some(s) = summary {
                    out.summaries.insert(FuncId(unit as u32), s);
                }
                out.candidates.extend(candidates);
            }
            UnitOutcome::Fail(failure) => out.failures.push(failure),
        }
    }
    if let Some(j) = &shared.journal {
        let _ = lock(j).sync();
    }
    finalize_pointer_stage(oracle.as_ref(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_program_hardened;

    const SRC: &str = "int get_v(void);\n\
         void f(void) { int x = 1; x = 2; use(x); }\n\
         void g(int p) { p = 3; use(p); }\n\
         void h(void) {\n\
           int r = get_v();\n\
           r = 0;\n\
           if (r) { use(r); }\n\
         }\n\
         void clean(void) { int y = 1; use(y); }\n";

    fn prog() -> Program {
        Program::build(&[("a.c", SRC)], &[]).unwrap()
    }

    fn sconf(jobs: usize) -> SentinelConfig {
        SentinelConfig {
            jobs,
            ..SentinelConfig::default()
        }
    }

    fn sorted_debug(outcome: &DetectOutcome) -> (Vec<String>, Vec<String>) {
        (
            outcome
                .candidates
                .iter()
                .map(|c| format!("{c:?}"))
                .collect(),
            outcome.failures.iter().map(|f| format!("{f:?}")).collect(),
        )
    }

    #[test]
    fn parallel_scan_matches_sequential_exactly() {
        let p = prog();
        let seq = detect_program_hardened(&p, DetectConfig::default(), HardenConfig::default());
        for jobs in [1, 2, 8] {
            let par = detect_program_sentinel(
                &p,
                DetectConfig::default(),
                HardenConfig::default(),
                &sconf(jobs),
            );
            assert_eq!(
                sorted_debug(&par),
                sorted_debug(&seq),
                "jobs={jobs} must match the sequential scan"
            );
        }
    }

    #[test]
    fn candidate_encoding_roundtrips() {
        let p = prog();
        let seq = detect_program_hardened(&p, DetectConfig::default(), HardenConfig::default());
        assert!(!seq.candidates.is_empty());
        for c in &seq.candidates {
            let enc = enc_candidate(c);
            let dec = dec_candidate(c.func.0 as usize, &c.func_name, &enc)
                .unwrap_or_else(|| panic!("decode failed for {enc:?}"));
            assert_eq!(format!("{dec:?}"), format!("{c:?}"));
        }
    }

    #[test]
    fn tricky_strings_roundtrip_the_record_codec() {
        let rec = UnitRecord::Ok {
            unit: 7,
            func: "we|ird\tname\\with,stuff\n".to_string(),
            exhausted: true,
            candidates: vec![],
        };
        let line = rec.encode_line();
        let body = verify_line(line.trim_end_matches('\n')).expect("checksum");
        match UnitRecord::decode_body(body).expect("decode") {
            UnitRecord::Ok {
                unit,
                func,
                exhausted,
                candidates,
            } => {
                assert_eq!(unit, 7);
                assert_eq!(func, "we|ird\tname\\with,stuff\n");
                assert!(exhausted);
                assert!(candidates.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fail_record_roundtrips() {
        let rec = UnitRecord::Fail {
            unit: 3,
            failure: FailureRecord {
                stage: FailStage::Detect,
                file: "a.c".to_string(),
                function: Some("f".to_string()),
                message: "panicked: boom\t|,".to_string(),
            },
        };
        let line = rec.encode_line();
        let body = verify_line(line.trim_end_matches('\n')).unwrap();
        match UnitRecord::decode_body(body).unwrap() {
            UnitRecord::Fail { unit, failure } => {
                assert_eq!(unit, 3);
                assert_eq!(failure.stage, FailStage::Detect);
                assert_eq!(failure.function.as_deref(), Some("f"));
                assert_eq!(failure.message, "panicked: boom\t|,");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn corrupted_checksum_is_rejected() {
        let rec = UnitRecord::Ok {
            unit: 0,
            func: "f".to_string(),
            exhausted: false,
            candidates: vec![],
        };
        let line = rec.encode_line();
        let mut bytes = line.into_bytes();
        bytes[3] ^= 0x01;
        let s = String::from_utf8(bytes).unwrap();
        assert!(verify_line(s.trim_end_matches('\n')).is_none());
    }

    #[test]
    fn replay_skips_torn_tail_and_truncates_there() {
        let dir = std::env::temp_dir().join("vc-sentinel-test-torn");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("scan.journal");
        let fp = 0x1234u64;
        {
            let mut w = JournalWriter::create(&path, fp).unwrap();
            w.append(&UnitRecord::Ok {
                unit: 0,
                func: "f".to_string(),
                exhausted: false,
                candidates: vec![],
            })
            .unwrap();
            w.sync().unwrap();
        }
        // Tear the second record mid-line.
        let full = UnitRecord::Ok {
            unit: 1,
            func: "g".to_string(),
            exhausted: false,
            candidates: vec![],
        }
        .encode_line();
        let before = fs::metadata(&path).unwrap().len();
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&full.as_bytes()[..full.len() / 2]).unwrap();
        drop(f);

        let replay = Replay::load(&path, fp);
        assert!(!replay.discarded);
        assert_eq!(replay.completed.len(), 1);
        assert!(replay.completed.contains_key(&0));
        assert_eq!(replay.torn_records, 1);
        assert_eq!(replay.valid_bytes, before);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn replay_discards_on_fingerprint_mismatch() {
        let dir = std::env::temp_dir().join("vc-sentinel-test-fp");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("scan.journal");
        JournalWriter::create(&path, 0xAAAA)
            .unwrap()
            .sync()
            .unwrap();
        let replay = Replay::load(&path, 0xBBBB);
        assert!(replay.discarded);
        assert!(replay.completed.is_empty());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn resume_replays_completed_units_and_matches_fresh_run() {
        let dir = std::env::temp_dir().join("vc-sentinel-test-resume");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("scan.journal");
        let _ = fs::remove_file(&path);
        let p = prog();
        let conf = DetectConfig::default();
        let hconf = HardenConfig::default();

        // Fresh journaled run.
        let mut first_conf = sconf(2);
        first_conf.journal = Some(path.clone());
        first_conf.fsync_every = 1;
        let fresh = detect_program_sentinel(&p, conf, hconf, &first_conf);

        // Resume from the complete journal: every unit replays, zero rescans,
        // identical outcome.
        let mut resume_conf = first_conf.clone();
        resume_conf.resume = true;
        let session = ObsSession::current_or_new();
        let _g = session.install();
        let resumed = detect_program_sentinel(&p, conf, hconf, &resume_conf);
        assert_eq!(sorted_debug(&resumed), sorted_debug(&fresh));
        let snap = session.registry.snapshot();
        assert_eq!(
            snap.counter(vc_obs::names::SENTINEL_UNITS_REPLAYED),
            p.funcs.len() as u64
        );
        assert_eq!(snap.counter(vc_obs::names::SENTINEL_UNITS_SCANNED), 0);

        // And resuming *again* is idempotent.
        let resumed2 = detect_program_sentinel(&p, conf, hconf, &resume_conf);
        assert_eq!(sorted_debug(&resumed2), sorted_debug(&fresh));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_tracks_config_and_sources() {
        let p = prog();
        let base = scan_fingerprint(
            &p,
            DetectConfig::default(),
            &HardenConfig::default(),
            &sconf(1),
        );
        let mut other_conf = DetectConfig::default();
        other_conf.use_alias_analysis = false;
        assert_ne!(
            base,
            scan_fingerprint(&p, other_conf, &HardenConfig::default(), &sconf(1))
        );
        let mut salted = sconf(1);
        salted.fingerprint_salt = 99;
        assert_ne!(
            base,
            scan_fingerprint(
                &p,
                DetectConfig::default(),
                &HardenConfig::default(),
                &salted
            )
        );
        let p2 = Program::build(&[("a.c", "void q(void) { int z = 1; use(z); }\n")], &[]).unwrap();
        assert_ne!(
            base,
            scan_fingerprint(
                &p2,
                DetectConfig::default(),
                &HardenConfig::default(),
                &sconf(1)
            )
        );
        // jobs must NOT change the fingerprint: a resumed run may use a
        // different worker count.
        assert_eq!(
            base,
            scan_fingerprint(
                &p,
                DetectConfig::default(),
                &HardenConfig::default(),
                &sconf(8)
            )
        );
    }

    #[test]
    fn poisoned_unit_retries_then_fails_permanent() {
        let p = prog();
        let session = ObsSession::current_or_new();
        let _g = session.install();
        let _fp = harden::arm_failpoint(FailStage::Detect, "g");
        let mut conf = sconf(2);
        conf.retry = 3;
        let out =
            detect_program_sentinel(&p, DetectConfig::default(), HardenConfig::default(), &conf);
        assert_eq!(out.failures.len(), 1);
        assert_eq!(out.failures[0].function.as_deref(), Some("g"));
        assert_eq!(out.failures[0].stage, FailStage::Detect);
        // The other units still produced their candidates.
        assert!(out.candidates.iter().any(|c| c.func_name == "f"));
        let snap = session.registry.snapshot();
        assert_eq!(snap.counter(vc_obs::names::SENTINEL_RETRIES), 2);
        assert_eq!(snap.counter(vc_obs::names::SENTINEL_FAILED_PERMANENT), 1);
        assert_eq!(snap.counter(vc_obs::names::HARDEN_POISONED_DETECT), 1);
    }

    #[test]
    fn poisoned_worker_is_replaced_and_units_requeue() {
        let p = prog();
        let session = ObsSession::current_or_new();
        let _g = session.install();
        // A worker-stage failpoint fires outside the unit isolation
        // boundary, killing the worker thread itself. Disarm after the
        // first hit so the revived incarnation can finish the scan.
        let plan = FailpointPlan::current();
        let _fp = harden::arm_failpoint(FailStage::Worker, "f");
        let seq = detect_program_hardened(&p, DetectConfig::default(), HardenConfig::default());

        let handle = thread::spawn({
            let p = Program::build(&[("a.c", SRC)], &[]).unwrap();
            let session = session.clone();
            move || {
                let _g = session.install();
                let _fp2 = plan.install();
                // One shot: the first worker to pick up `f` dies; disarm so
                // the requeued attempt succeeds.
                let out = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    detect_program_sentinel(
                        &p,
                        DetectConfig::default(),
                        HardenConfig::default(),
                        &sconf(2),
                    )
                }));
                out
            }
        });
        // Disarm shortly after launch; the failpoint only needs to fire
        // once (`hit` is checked per unit pickup, and unit `f` retries
        // after the worker is reaped).
        thread::sleep(Duration::from_millis(5));
        drop(_fp);
        let out = handle.join().unwrap().expect("scan must survive");
        assert_eq!(sorted_debug(&out), sorted_debug(&seq));
        let snap = session.registry.snapshot();
        assert!(snap.counter(vc_obs::names::SENTINEL_WORKER_REPLACED) >= 1);
        assert!(snap.counter(vc_obs::names::SENTINEL_REQUEUES) >= 1);
    }

    #[test]
    fn unit_deadline_requeues_slow_units() {
        // With a zero-ish deadline every first attempt times out; retries
        // eventually fail permanent — but the scan still terminates and
        // reports every unit exactly once.
        let p = prog();
        let session = ObsSession::current_or_new();
        let _g = session.install();
        let mut conf = sconf(2);
        conf.retry = 2;
        conf.unit_deadline = Some(Duration::from_secs(30));
        let out =
            detect_program_sentinel(&p, DetectConfig::default(), HardenConfig::default(), &conf);
        // A 30s deadline never fires for this tiny program: clean run.
        assert!(out.failures.is_empty());
        let snap = session.registry.snapshot();
        assert_eq!(snap.counter(vc_obs::names::SENTINEL_DEADLINE_TIMEOUTS), 0);
        assert_eq!(
            snap.counter(vc_obs::names::SENTINEL_UNITS),
            p.funcs.len() as u64
        );
        assert_eq!(
            snap.counter(vc_obs::names::SENTINEL_UNITS_COMPLETED),
            p.funcs.len() as u64
        );
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let conf = SentinelConfig {
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(50),
            ..SentinelConfig::default()
        };
        assert_eq!(conf.backoff(1), Duration::from_millis(2));
        assert_eq!(conf.backoff(2), Duration::from_millis(4));
        assert_eq!(conf.backoff(3), Duration::from_millis(8));
        assert_eq!(conf.backoff(30), Duration::from_millis(50));
    }
}
