//! Suppression: inline annotations and the persisted suppression store.
//!
//! A team adopting a scanner inherits its backlog; the way out is to mark
//! the findings they have triaged as *suppressed* so the CI gate only
//! fires on new ones. Two mechanisms cooperate here:
//!
//! - **Inline annotations** — a `// vcheck:allow(<scenario>)` comment in
//!   the source itself, either trailing the flagged definition line or on
//!   a line of its own directly above it. `all` (or a bare
//!   `vcheck:allow`) matches any scenario. The MiniC lexer strips
//!   comments, so annotations never change parsing, fingerprints, or
//!   line numbers.
//! - **The [`SuppressStore`]** — an on-disk list of suppressed findings
//!   keyed by drift-stable fingerprint, with the same torn-write
//!   discipline as the snapshot store: trailing FNV-1a checksum, atomic
//!   save, and a never-failing load that degrades to empty under
//!   `suppress.store_corrupt` / `suppress.store_recovered`.
//!
//! Fingerprints survive pure drift but not an edit to the definition line
//! itself, and a wholesale refactor moves code beyond what any fingerprint
//! tracks. The store therefore carries each entry's *current* coordinates
//! and [`SuppressStore::advance`] pushes them through the
//! [`LineMap`](vc_vcs::diff::LineMap) at every revision step; when a
//! finding's fingerprint no longer matches any entry,
//! [`SuppressStore::match_and_heal`] falls back to file + scenario +
//! nearby line (within [`CHURN_NEARBY_LINES`]) and re-keys the entry to
//! the finding's new fingerprint — a suppression survives the refactor
//! that invalidated its hash (`suppress.line_mapped`).

use std::{
    collections::HashMap,
    path::Path, //
};

use vc_obs::names;
use vc_vcs::diff::LineMap;

use crate::{
    delta::{
        Finding,
        CHURN_NEARBY_LINES, //
    },
    incremental::content_hash,
};

/// The annotation marker scanned for in source comments.
pub const ALLOW_MARKER: &str = "vcheck:allow";

/// Scenario wildcard: matches every scenario.
const ANY_SCENARIO: &str = "all";

/// Inline `// vcheck:allow(...)` annotations indexed from one revision's
/// sources: `(file, line) → scenario` (with [`ANY_SCENARIO`] as the
/// wildcard). Lines are the *covered* lines, not the annotation lines — a
/// standalone annotation covers the line below it, a trailing one covers
/// its own.
#[derive(Clone, Debug, Default)]
pub struct InlineSuppressions {
    allows: HashMap<(String, u32), String>,
}

impl InlineSuppressions {
    /// Scans every file of a snapshot for annotations.
    pub fn from_sources(sources: &HashMap<String, String>) -> InlineSuppressions {
        let mut allows = HashMap::new();
        for (file, content) in sources {
            for (i, line) in content.lines().enumerate() {
                let Some(comment_at) = line.find("//") else {
                    continue;
                };
                let comment = &line[comment_at..];
                let Some(marker_at) = comment.find(ALLOW_MARKER) else {
                    continue;
                };
                let scenario = parse_scenario(&comment[marker_at + ALLOW_MARKER.len()..]);
                let standalone = line[..comment_at].trim().is_empty();
                // 1-based: a standalone annotation on line i+1 covers line
                // i+2; a trailing one covers its own line i+1.
                let covered = if standalone {
                    i as u32 + 2
                } else {
                    i as u32 + 1
                };
                allows.insert((file.clone(), covered), scenario);
            }
        }
        InlineSuppressions { allows }
    }

    /// Whether an annotation covers `(file, line)` for `scenario`.
    pub fn allows(&self, file: &str, line: u32, scenario: &str) -> bool {
        match self.allows.get(&(file.to_string(), line)) {
            Some(s) => s == ANY_SCENARIO || s == scenario,
            None => false,
        }
    }

    /// Number of annotations found.
    pub fn len(&self) -> usize {
        self.allows.len()
    }

    /// Whether no annotations were found.
    pub fn is_empty(&self) -> bool {
        self.allows.is_empty()
    }
}

/// Extracts the scenario from the text after the marker: `(retval)` →
/// `retval`; a bare marker, empty parens, or `(all)` → the wildcard.
fn parse_scenario(rest: &str) -> String {
    let rest = rest.trim_start();
    let Some(open) = rest.strip_prefix('(') else {
        return ANY_SCENARIO.to_string();
    };
    let Some(close) = open.find(')') else {
        return ANY_SCENARIO.to_string();
    };
    let scenario = open[..close].trim();
    if scenario.is_empty() {
        ANY_SCENARIO.to_string()
    } else {
        scenario.to_string()
    }
}

/// On-disk format version of [`SuppressStore`].
pub const SUPPRESS_FILE_VERSION: u32 = 1;

/// One suppressed finding: its drift-stable fingerprint plus the current
/// coordinates the nearby-line fallback needs when the fingerprint stops
/// matching.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuppressEntry {
    /// Fingerprint of the suppressed finding (healed on line-map matches).
    pub fingerprint: u64,
    /// File of the suppressed definition.
    pub file: String,
    /// 1-based line in the *most recently advanced* revision.
    pub line: u32,
    /// Scenario label, or `all` for any.
    pub scenario: String,
    /// Free-form triage note (no tabs or newlines survive the round trip).
    pub reason: String,
}

/// How an entry matched a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SuppressMatch {
    /// Exact fingerprint equality (`suppress.store`).
    Fingerprint,
    /// File + scenario + nearby-line fallback after the fingerprint moved
    /// (`suppress.line_mapped`); the entry was re-keyed to the new
    /// fingerprint.
    NearbyLine,
}

/// The persisted suppression list.
///
/// Line-oriented, checksummed, atomically written:
///
/// ```text
/// vcheck-suppress v1
/// allow <fp-hex16>\t<file>\t<line>\t<scenario>\t<reason>
/// checksum <hex16>
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SuppressStore {
    /// The suppressed findings, in file order.
    pub entries: Vec<SuppressEntry>,
}

impl SuppressStore {
    /// Loads a store from disk. **Never fails**: a missing file is an
    /// empty store; a checksum mismatch degrades to empty under
    /// `suppress.store_corrupt`, any other defect under
    /// `suppress.store_recovered`.
    pub fn load(path: &Path) -> SuppressStore {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(_) => return SuppressStore::default(),
        };
        let Some((body, sum)) = split_checksum(&text) else {
            vc_obs::counter_inc(names::SUPPRESS_STORE_RECOVERED);
            return SuppressStore::default();
        };
        if content_hash(body) != sum {
            vc_obs::counter_inc(names::SUPPRESS_STORE_CORRUPT);
            return SuppressStore::default();
        }
        match Self::parse(body) {
            Some(store) => store,
            None => {
                vc_obs::counter_inc(names::SUPPRESS_STORE_RECOVERED);
                SuppressStore::default()
            }
        }
    }

    fn parse(text: &str) -> Option<SuppressStore> {
        let mut lines = text.lines();
        let version = lines.next()?.strip_prefix("vcheck-suppress v")?;
        if version.parse::<u32>().ok()? != SUPPRESS_FILE_VERSION {
            return None;
        }
        let mut store = SuppressStore::default();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let rec = line.strip_prefix("allow ")?;
            let mut parts = rec.split('\t');
            let entry = SuppressEntry {
                fingerprint: u64::from_str_radix(parts.next()?, 16).ok()?,
                file: parts.next()?.to_string(),
                line: parts.next()?.parse().ok()?,
                scenario: parts.next()?.to_string(),
                reason: parts.next()?.to_string(),
            };
            if parts.next().is_some() {
                return None; // trailing garbage on the line
            }
            store.entries.push(entry);
        }
        Some(store)
    }

    /// Serialises the store (including its checksum line).
    pub fn to_text(&self) -> String {
        let mut out = format!("vcheck-suppress v{SUPPRESS_FILE_VERSION}\n");
        for e in &self.entries {
            out.push_str(&format!(
                "allow {:016x}\t{}\t{}\t{}\t{}\n",
                e.fingerprint,
                e.file,
                e.line,
                e.scenario,
                e.reason.replace(['\t', '\n'], " ")
            ));
        }
        out.push_str(&format!("checksum {:016x}\n", content_hash(&out)));
        out
    }

    /// Writes the store atomically (temp file + fsync + rename), like
    /// [`SnapshotStore::save`](crate::incremental::SnapshotStore::save).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        use std::io::Write as _;
        let out = self.to_text();
        let file_name = path
            .file_name()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no file name"))?;
        let tmp = path.with_file_name(format!(
            ".{}.tmp.{}",
            file_name.to_string_lossy(),
            std::process::id()
        ));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(out.as_bytes())?;
            f.sync_all()?;
        }
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        if let Some(dir) = path.parent() {
            if let Ok(d) = std::fs::File::open(if dir.as_os_str().is_empty() {
                Path::new(".")
            } else {
                dir
            }) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Pushes every entry's line through the edit script from
    /// `old_sources` to `new_sources`, keeping the store's coordinates in
    /// the current revision. Entries in deleted files (or whose
    /// neighbourhood vanished) keep their stale line — the fingerprint key
    /// still works, only the nearby-line fallback degrades.
    pub fn advance(
        &mut self,
        old_sources: &HashMap<String, String>,
        new_sources: &HashMap<String, String>,
    ) {
        let mut maps: HashMap<String, Option<LineMap>> = HashMap::new();
        for e in &mut self.entries {
            let map = maps.entry(e.file.clone()).or_insert_with(|| {
                let old_text = old_sources.get(&e.file)?;
                let new_text = new_sources.get(&e.file)?;
                let old_lines: Vec<String> = old_text.lines().map(str::to_string).collect();
                let new_lines: Vec<String> = new_text.lines().map(str::to_string).collect();
                Some(LineMap::between(&old_lines, &new_lines))
            });
            if let Some(mapped) = map.as_ref().and_then(|m| m.old_to_new_nearby(e.line)) {
                e.line = mapped;
            }
        }
    }

    /// Matches `finding` against the store: fingerprint equality first;
    /// otherwise the same file + scenario within [`CHURN_NEARBY_LINES`] of
    /// an entry's (advanced) line, in which case the entry is *healed* —
    /// re-keyed to the finding's fingerprint and line — so the next
    /// revision matches cheaply again. Records `suppress.store` /
    /// `suppress.line_mapped` into the installed session.
    pub fn match_and_heal(&mut self, finding: &Finding) -> Option<SuppressMatch> {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.fingerprint == finding.fingerprint.0)
        {
            e.file = finding.file.clone();
            e.line = finding.line;
            vc_obs::counter_inc(names::SUPPRESS_STORE);
            return Some(SuppressMatch::Fingerprint);
        }
        let e = self.entries.iter_mut().find(|e| {
            e.file == finding.file
                && (e.scenario == ANY_SCENARIO || e.scenario == finding.scenario)
                && e.line.abs_diff(finding.line) <= CHURN_NEARBY_LINES
        })?;
        e.fingerprint = finding.fingerprint.0;
        e.line = finding.line;
        vc_obs::counter_inc(names::SUPPRESS_LINE_MAPPED);
        Some(SuppressMatch::NearbyLine)
    }
}

/// Splits a store file into (body, trailing checksum).
fn split_checksum(text: &str) -> Option<(&str, u64)> {
    let trimmed = text.strip_suffix('\n')?;
    let body_end = trimmed.rfind('\n').map(|i| i + 1).unwrap_or(0);
    let sum = u64::from_str_radix(trimmed[body_end..].strip_prefix("checksum ")?, 16).ok()?;
    Some((&text[..body_end], sum))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::Fingerprint;

    fn sources(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs
            .iter()
            .map(|(p, c)| (p.to_string(), c.to_string()))
            .collect()
    }

    fn finding(file: &str, line: u32, scenario: &str, fp: u64) -> Finding {
        Finding {
            fingerprint: Fingerprint(fp),
            file: file.into(),
            line,
            function: "f".into(),
            variable: "ret".into(),
            scenario: scenario.into(),
        }
    }

    #[test]
    fn standalone_annotation_covers_the_next_line() {
        let src = sources(&[(
            "a.c",
            "int f(void) {\n// vcheck:allow(retval)\nint ret = g();\nreturn 0;\n}\n",
        )]);
        let inline = InlineSuppressions::from_sources(&src);
        assert_eq!(inline.len(), 1);
        assert!(inline.allows("a.c", 3, "retval"));
        assert!(!inline.allows("a.c", 2, "retval"), "not the comment line");
        assert!(!inline.allows("a.c", 3, "param"), "scenario-scoped");
        assert!(!inline.allows("b.c", 3, "retval"));
    }

    #[test]
    fn trailing_annotation_covers_its_own_line() {
        let src = sources(&[(
            "a.c",
            "int f(void) {\nint ret = g(); // vcheck:allow(retval)\nreturn 0;\n}\n",
        )]);
        let inline = InlineSuppressions::from_sources(&src);
        assert!(inline.allows("a.c", 2, "retval"));
        assert!(!inline.allows("a.c", 3, "retval"));
    }

    #[test]
    fn bare_and_all_annotations_match_any_scenario() {
        let src = sources(&[(
            "a.c",
            "int x = g(); // vcheck:allow\nint y = h(); // vcheck:allow(all)\n",
        )]);
        let inline = InlineSuppressions::from_sources(&src);
        assert!(inline.allows("a.c", 1, "retval"));
        assert!(inline.allows("a.c", 1, "overwritten"));
        assert!(inline.allows("a.c", 2, "param"));
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("vc-suppress-{}-{}", std::process::id(), name))
    }

    #[test]
    fn store_roundtrips_atomically() {
        let path = temp_path("roundtrip");
        let store = SuppressStore {
            entries: vec![SuppressEntry {
                fingerprint: 0xABCD,
                file: "a.c".into(),
                line: 7,
                scenario: "retval".into(),
                reason: "vetted 2026-08".into(),
            }],
        };
        store.save(&path).unwrap();
        assert_eq!(SuppressStore::load(&path), store);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_store_degrades_empty_and_counts() {
        let path = temp_path("corrupt");
        let store = SuppressStore {
            entries: vec![SuppressEntry {
                fingerprint: 1,
                file: "a.c".into(),
                line: 1,
                scenario: "all".into(),
                reason: "r".into(),
            }],
        };
        store.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("a.c", "b.c")).unwrap();
        let obs = vc_obs::ObsSession::new();
        let loaded = {
            let _g = obs.install();
            SuppressStore::load(&path)
        };
        assert_eq!(loaded, SuppressStore::default());
        assert_eq!(obs.registry.counter(names::SUPPRESS_STORE_CORRUPT), 1);
        assert_eq!(obs.registry.counter(names::SUPPRESS_STORE_RECOVERED), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_store_counts_as_recovered() {
        let path = temp_path("truncated");
        std::fs::write(&path, "vcheck-suppress v1\nallow 00ff\ta.c\n").unwrap();
        let obs = vc_obs::ObsSession::new();
        let loaded = {
            let _g = obs.install();
            SuppressStore::load(&path)
        };
        assert_eq!(loaded, SuppressStore::default());
        assert_eq!(obs.registry.counter(names::SUPPRESS_STORE_RECOVERED), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_match_wins_and_refreshes_coordinates() {
        let mut store = SuppressStore {
            entries: vec![SuppressEntry {
                fingerprint: 42,
                file: "a.c".into(),
                line: 3,
                scenario: "retval".into(),
                reason: String::new(),
            }],
        };
        let obs = vc_obs::ObsSession::new();
        let m = {
            let _g = obs.install();
            store.match_and_heal(&finding("a.c", 30, "retval", 42))
        };
        assert_eq!(m, Some(SuppressMatch::Fingerprint));
        assert_eq!(store.entries[0].line, 30, "coordinates refreshed");
        assert_eq!(obs.registry.counter(names::SUPPRESS_STORE), 1);
    }

    #[test]
    fn nearby_line_fallback_heals_the_fingerprint() {
        let mut store = SuppressStore {
            entries: vec![SuppressEntry {
                fingerprint: 42,
                file: "a.c".into(),
                line: 10,
                scenario: "retval".into(),
                reason: String::new(),
            }],
        };
        let obs = vc_obs::ObsSession::new();
        // Fingerprint moved (definition line edited), but the finding sits
        // within CHURN_NEARBY_LINES of the entry's advanced line.
        let m = {
            let _g = obs.install();
            store.match_and_heal(&finding("a.c", 12, "retval", 99))
        };
        assert_eq!(m, Some(SuppressMatch::NearbyLine));
        assert_eq!(store.entries[0].fingerprint, 99, "healed");
        assert_eq!(obs.registry.counter(names::SUPPRESS_LINE_MAPPED), 1);
        // Far away, or a different scenario: no match.
        assert_eq!(store.match_and_heal(&finding("a.c", 40, "retval", 7)), None);
        assert_eq!(store.match_and_heal(&finding("a.c", 12, "param", 7)), None);
    }

    #[test]
    fn advance_tracks_drift_through_the_line_map() {
        let mut store = SuppressStore {
            entries: vec![SuppressEntry {
                fingerprint: 1,
                file: "a.c".into(),
                line: 2,
                scenario: "all".into(),
                reason: String::new(),
            }],
        };
        let old = sources(&[("a.c", "one\ntwo\nthree\n")]);
        let new = sources(&[("a.c", "pad\npad\none\ntwo\nthree\n")]);
        store.advance(&old, &new);
        assert_eq!(store.entries[0].line, 4, "two pad lines above");
        // A deleted file leaves the entry untouched.
        let gone = sources(&[]);
        store.advance(&new, &gone);
        assert_eq!(store.entries[0].line, 4);
    }
}
