//! Incremental per-commit analysis (§8.6).
//!
//! The paper integrates ValueCheck into development by analysing "only the
//! changed functions and the affected files in a commit", bringing per-commit
//! cost under five seconds. This module does the same: given a commit, it
//! rebuilds the program from the snapshot at that commit but runs detection
//! only for functions defined in the files the commit touched.
//!
//! Replaying many commits rebuilds the same snapshots repeatedly (adjacent
//! commits share most of their tree); [`SnapshotCache`] memoizes built
//! [`Program`]s by a content hash, and every commit analysed through
//! [`analyze_commit_cached`] records `incremental.cache.hits` /
//! `incremental.cache.misses` into the installed observability session.
//!
//! [`SnapshotStore`] persists the previous run's findings to disk so a
//! follow-up run can diff against them. The store is written by a tool that
//! may be killed mid-write and read by a newer binary with a different
//! format, so the file carries a trailing content checksum,
//! [`SnapshotStore::save`] is atomic (temp file + fsync + rename — a
//! concurrent reader sees the old store or the new one, never a torn mix),
//! and [`SnapshotStore::load`] never fails: a checksum mismatch degrades to
//! a cold (empty) store under `harden.snapshot_corrupt`, while a truncated,
//! malformed, or version-mismatched file degrades the same way under
//! `harden.snapshot_recovered`.

use std::{
    collections::{
        BTreeSet,
        HashMap,
        HashSet, //
    },
    path::Path,
    sync::Arc,
};

use vc_dataflow::summary::{
    SigInterner,
    Summaries, //
};
use vc_ir::{
    program::BuildError,
    FuncId,
    Program, //
};
use vc_obs::Budget;
use vc_pointer::demand::DemandPointer;
use vc_vcs::{
    CommitId,
    Repository, //
};

use crate::{
    authorship::AuthorshipCtx,
    candidate::Candidate,
    detect::detect_unit,
    prune::{
        prune,
        PeerScope,
        PeerStats,
        PruneConfig, //
    },
    rank::{
        rank,
        RankConfig,
        Ranked, //
    },
};

/// The findings for one commit.
#[derive(Clone, Debug)]
pub struct CommitFindings {
    /// The analysed commit.
    pub commit: CommitId,
    /// Files the commit touched.
    pub changed_files: Vec<String>,
    /// Functions analysed (those defined in changed files).
    pub analysed_functions: usize,
    /// Ranked findings within the changed functions.
    pub findings: Vec<Ranked>,
}

/// Memoizes built [`Program`]s by snapshot content, for commit replays.
///
/// Keys hash the sorted `(path, content)` pairs of the snapshot plus the
/// preprocessor defines, so two commits with identical trees (e.g. a revert)
/// share one build.
#[derive(Debug, Default)]
pub struct SnapshotCache {
    programs: HashMap<u64, Arc<Program>>,
}

impl SnapshotCache {
    /// An empty cache.
    pub fn new() -> SnapshotCache {
        SnapshotCache::default()
    }

    /// Number of distinct snapshots built so far.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// The program for `commit`'s snapshot, building it on first sight.
    /// Records a cache hit or miss into the installed observability session.
    pub fn program_at(
        &mut self,
        repo: &Repository,
        commit: CommitId,
        defines: &[String],
    ) -> Result<Arc<Program>, BuildError> {
        let tree = repo.snapshot_at(commit);
        let mut sources: Vec<(&str, &str)> =
            tree.iter().map(|(p, c)| (p.as_str(), c.as_str())).collect();
        sources.sort_by_key(|(p, _)| p.to_string());
        let key = snapshot_key(&sources, defines);
        if let Some(prog) = self.programs.get(&key) {
            vc_obs::counter_inc(vc_obs::names::INCREMENTAL_CACHE_HITS);
            return Ok(prog.clone());
        }
        vc_obs::counter_inc(vc_obs::names::INCREMENTAL_CACHE_MISSES);
        let prog = Arc::new(Program::build(&sources, defines)?);
        self.programs.insert(key, prog.clone());
        Ok(prog)
    }
}

/// On-disk format version of [`SnapshotStore`]. Bumped whenever the line
/// format changes; older files are treated as cold caches, never parsed
/// across versions. v2 added the trailing `checksum` line; v3 added the
/// file, scenario, and drift-stable fingerprint fields (so a store doubles
/// as a `vcheck delta --baseline` suppression set).
pub const SNAPSHOT_FILE_VERSION: u32 = 3;

/// One persisted finding: the identity triple plus the coordinates the
/// differential scanner needs — file, scenario, and the drift-stable
/// [`Fingerprint`](crate::delta::Fingerprint) — enough to diff runs without
/// re-ranking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoredFinding {
    /// Containing function.
    pub function: String,
    /// Variable name.
    pub variable: String,
    /// 1-based line of the definition.
    pub line: u32,
    /// File of the definition.
    pub file: String,
    /// Scenario label (`retval`, `param`, or `overwritten`).
    pub scenario: String,
    /// Drift-stable fingerprint (hex16 on disk).
    pub fingerprint: u64,
}

/// Findings persisted between runs (the per-commit mode's memory).
///
/// The format is a line-oriented text file whose last line is an FNV-1a
/// checksum of everything above it:
///
/// ```text
/// valuecheck-snapshot v3
/// commit 42
/// finding <function>\t<variable>\t<line>\t<file>\t<scenario>\t<fp-hex16>
/// checksum <hex16>
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SnapshotStore {
    /// The commit the stored findings belong to, when known.
    pub commit: Option<CommitId>,
    /// The findings of the stored run.
    pub findings: Vec<StoredFinding>,
}

impl SnapshotStore {
    /// Loads a store from disk. **Never fails**: a missing file is a normal
    /// cold start; any other defect degrades to a cold (empty) store, so
    /// the caller transparently rebuilds from scratch. Defects are counted
    /// by kind — a failed content checksum (bit rot, torn concurrent
    /// write) bumps `harden.snapshot_corrupt`, while a truncated,
    /// malformed, or version-mismatched file bumps
    /// `harden.snapshot_recovered`.
    pub fn load(path: &Path) -> SnapshotStore {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(_) => return SnapshotStore::default(), // cold start
        };
        let Some((body, sum)) = Self::split_checksum(&text) else {
            // No checksum line: a pre-v2 file or one truncated mid-write.
            vc_obs::counter_inc(vc_obs::names::HARDEN_SNAPSHOT_RECOVERED);
            return SnapshotStore::default();
        };
        if content_hash(body) != sum {
            vc_obs::counter_inc(vc_obs::names::HARDEN_SNAPSHOT_CORRUPT);
            return SnapshotStore::default();
        }
        match Self::parse(body) {
            Some(store) => store,
            None => {
                vc_obs::counter_inc(vc_obs::names::HARDEN_SNAPSHOT_RECOVERED);
                SnapshotStore::default()
            }
        }
    }

    /// Splits the file into (body, trailing checksum). `None` when the last
    /// line is not a well-formed `checksum <hex16>` record.
    fn split_checksum(text: &str) -> Option<(&str, u64)> {
        let trimmed = text.strip_suffix('\n')?;
        let body_end = trimmed.rfind('\n').map(|i| i + 1).unwrap_or(0);
        let sum = u64::from_str_radix(trimmed[body_end..].strip_prefix("checksum ")?, 16).ok()?;
        Some((&text[..body_end], sum))
    }

    fn parse(text: &str) -> Option<SnapshotStore> {
        let mut lines = text.lines();
        let header = lines.next()?;
        let version = header.strip_prefix("valuecheck-snapshot v")?;
        if version.parse::<u32>().ok()? != SNAPSHOT_FILE_VERSION {
            return None;
        }
        let mut store = SnapshotStore::default();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            if let Some(c) = line.strip_prefix("commit ") {
                store.commit = Some(CommitId(c.parse().ok()?));
            } else if let Some(f) = line.strip_prefix("finding ") {
                let mut parts = f.split('\t');
                let finding = StoredFinding {
                    function: parts.next()?.to_string(),
                    variable: parts.next()?.to_string(),
                    line: parts.next()?.parse().ok()?,
                    file: parts.next()?.to_string(),
                    scenario: parts.next()?.to_string(),
                    fingerprint: u64::from_str_radix(parts.next()?, 16).ok()?,
                };
                if parts.next().is_some() {
                    return None; // trailing garbage on the line
                }
                store.findings.push(finding);
            } else {
                return None; // unknown record kind
            }
        }
        Some(store)
    }

    /// Serialises and writes the store **atomically**: the content (plus
    /// its trailing checksum line) goes to a temp file in the same
    /// directory, is fsynced, and is renamed over `path`. A reader — or a
    /// crash — at any point sees either the complete old store or the
    /// complete new one, never a torn mix.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        use std::io::Write as _;
        let mut out = format!("valuecheck-snapshot v{SNAPSHOT_FILE_VERSION}\n");
        if let Some(c) = self.commit {
            out.push_str(&format!("commit {}\n", c.0));
        }
        for f in &self.findings {
            out.push_str(&format!(
                "finding {}\t{}\t{}\t{}\t{}\t{:016x}\n",
                f.function, f.variable, f.line, f.file, f.scenario, f.fingerprint
            ));
        }
        out.push_str(&format!("checksum {:016x}\n", content_hash(&out)));

        let file_name = path
            .file_name()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no file name"))?;
        let tmp = path.with_file_name(format!(
            ".{}.tmp.{}",
            file_name.to_string_lossy(),
            std::process::id()
        ));
        let write_and_rename = || -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(out.as_bytes())?;
            f.sync_all()?;
            drop(f);
            std::fs::rename(&tmp, path)
        };
        if let Err(e) = write_and_rename() {
            // Any failure — create, write, fsync, or rename — must not leave
            // `.tmp` debris behind: a long-lived daemon saves on every
            // shutdown and would otherwise accumulate orphans.
            let _ = std::fs::remove_file(&tmp);
            vc_obs::counter_inc(vc_obs::names::HARDEN_SNAPSHOT_SAVE_FAILED);
            return Err(e);
        }
        // Make the rename itself durable (best-effort: directory fsync is
        // not available on every platform).
        if let Some(dir) = path.parent() {
            if let Ok(d) = std::fs::File::open(if dir.as_os_str().is_empty() {
                Path::new(".")
            } else {
                dir
            }) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Replaces the stored run with `findings` for `commit`. The program is
    /// needed to resolve file names and compute drift-stable fingerprints.
    pub fn record(&mut self, prog: &vc_ir::Program, commit: CommitId, findings: &[Ranked]) {
        self.commit = Some(commit);
        self.findings = crate::delta::fingerprint_ranked(prog, findings)
            .into_iter()
            .map(|f| StoredFinding {
                function: f.function,
                variable: f.variable,
                line: f.line,
                file: f.file,
                scenario: f.scenario,
                fingerprint: f.fingerprint.0,
            })
            .collect();
    }

    /// The stored fingerprints as a suppression set (`vcheck delta
    /// --baseline`).
    pub fn fingerprint_set(&self) -> HashSet<u64> {
        self.findings.iter().map(|f| f.fingerprint).collect()
    }

    /// Builds a store directly from fingerprinted findings (`vcheck delta
    /// --write-baseline` records the new-revision scan this way).
    pub fn from_findings(commit: CommitId, findings: &[crate::delta::Finding]) -> SnapshotStore {
        SnapshotStore {
            commit: Some(commit),
            findings: findings
                .iter()
                .map(|f| StoredFinding {
                    function: f.function.clone(),
                    variable: f.variable.clone(),
                    line: f.line,
                    file: f.file.clone(),
                    scenario: f.scenario.clone(),
                    fingerprint: f.fingerprint.0,
                })
                .collect(),
        }
    }
}

/// [`analyze_commit`] with on-disk persistence: loads the previous run's
/// findings from `store_path` (recovering from corruption transparently),
/// analyses `commit`, and saves the new findings back.
pub fn analyze_commit_stored(
    store_path: &Path,
    repo: &Repository,
    commit: CommitId,
    defines: &[String],
    prune_config: &PruneConfig,
    rank_config: &RankConfig,
) -> Result<(CommitFindings, SnapshotStore), BuildError> {
    let previous = SnapshotStore::load(store_path);
    let tree = repo.snapshot_at(commit);
    let mut sources: Vec<(&str, &str)> =
        tree.iter().map(|(p, c)| (p.as_str(), c.as_str())).collect();
    sources.sort_by_key(|(p, _)| p.to_string());
    let prog = Program::build(&sources, defines)?;
    let findings = analyze_commit_in(&prog, repo, commit, prune_config, rank_config);
    let mut next = SnapshotStore::default();
    next.record(&prog, commit, &findings.findings);
    // A failed save is not fatal: the next run just starts cold.
    let _ = next.save(store_path);
    Ok((findings, previous))
}

/// FNV-1a over a text blob — the content checksum shared by the on-disk
/// stores (snapshot, suppression, lifecycle DB).
pub(crate) fn content_hash(text: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in text.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// FNV-1a over the snapshot contents and defines.
fn snapshot_key(sources: &[(&str, &str)], defines: &[String]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= 0xFF; // Field separator, so ("ab","c") != ("a","bc").
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for (p, c) in sources {
        eat(p.as_bytes());
        eat(c.as_bytes());
    }
    for d in defines {
        eat(d.as_bytes());
    }
    h
}

/// [`analyze_commit`] with snapshot memoization: repeated trees (reverts,
/// rebuilt replays) reuse the cached [`Program`].
pub fn analyze_commit_cached(
    cache: &mut SnapshotCache,
    repo: &Repository,
    commit: CommitId,
    defines: &[String],
    prune_config: &PruneConfig,
    rank_config: &RankConfig,
) -> Result<CommitFindings, BuildError> {
    let prog = cache.program_at(repo, commit, defines)?;
    Ok(analyze_commit_in(
        &prog,
        repo,
        commit,
        prune_config,
        rank_config,
    ))
}

/// Analyses the snapshot at `commit`, detecting only in its changed files.
///
/// Program-wide context (signatures, call sites, peer statistics) still
/// comes from the full snapshot — detection is local, the supporting indexes
/// are not, matching the paper's design where analysis runs per bitcode file
/// against whole-project metadata.
pub fn analyze_commit(
    repo: &Repository,
    commit: CommitId,
    defines: &[String],
    prune_config: &PruneConfig,
    rank_config: &RankConfig,
) -> Result<CommitFindings, BuildError> {
    let tree = repo.snapshot_at(commit);
    let mut sources: Vec<(&str, &str)> =
        tree.iter().map(|(p, c)| (p.as_str(), c.as_str())).collect();
    sources.sort_by_key(|(p, _)| p.to_string());
    let prog = Program::build(&sources, defines)?;
    Ok(analyze_commit_in(
        &prog,
        repo,
        commit,
        prune_config,
        rank_config,
    ))
}

/// The incremental fast path: analyses `commit` against a program already
/// built for that snapshot (the equivalent of the paper's pre-compiled
/// bitcode). Detection runs only for the changed files' functions, each
/// producing its summary once; pointer facts are resolved on demand per
/// indirect-call candidate; peer statistics are scoped (via
/// redundant-summary elimination) to the callees and signatures the
/// surviving candidates actually reference.
pub fn analyze_commit_in(
    prog: &Program,
    repo: &Repository,
    commit: CommitId,
    prune_config: &PruneConfig,
    rank_config: &RankConfig,
) -> CommitFindings {
    let changed: BTreeSet<String> = repo
        .commit_info(commit)
        .writes
        .iter()
        .map(|w| w.path.clone())
        .collect();
    let changed_ids: BTreeSet<vc_ir::FileId> = prog
        .source
        .iter()
        .filter(|f| changed.contains(&f.name))
        .map(|f| f.id)
        .collect();

    let interner = SigInterner::new(prog);
    let oracle = DemandPointer::new(prog, vc_pointer::Config::default(), true);
    let mut summaries = Summaries::default();
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut analysed = 0usize;
    for (fi, f) in prog.funcs.iter().enumerate() {
        if !changed_ids.contains(&f.file) {
            continue;
        }
        analysed += 1;
        let fid = FuncId(fi as u32);
        let (summary, cands) = detect_unit(
            prog,
            fid,
            interner.sig_of(fid),
            Some(&oracle),
            Budget::UNLIMITED,
        );
        summaries.insert(fid, summary);
        candidates.extend(cands);
    }

    vc_obs::counter_inc(vc_obs::names::INCREMENTAL_COMMITS);
    vc_obs::counter_add(
        vc_obs::names::INCREMENTAL_FUNCTIONS_ANALYSED,
        analysed as u64,
    );

    let ctx = AuthorshipCtx::new(prog, repo);
    let attributed: Vec<_> = ctx
        .attribute_all(&candidates)
        .into_iter()
        .filter(|a| a.cross_scope)
        .collect();
    // Peer statistics scoped to what the candidates actually reference:
    // the §8.6 incremental fast path (summaries are only built for
    // functions sharing a relevant callee or signature; everything else is
    // eliminated before analysis).
    let scope = PeerScope::from_items(&interner, &attributed);
    let peers = PeerStats::compute_with(prog, interner, &mut summaries, Some(&scope));
    let outcome = prune(prog, prune_config, &peers, &summaries, attributed);
    let findings = rank(prog, repo, rank_config, outcome.kept);

    CommitFindings {
        commit,
        changed_files: changed.into_iter().collect(),
        analysed_functions: analysed,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_vcs::FileWrite;

    fn write(path: &str, content: &str) -> FileWrite {
        FileWrite {
            path: path.into(),
            content: content.into(),
        }
    }

    #[test]
    fn analyzes_only_changed_files() {
        let mut repo = Repository::new();
        let alice = repo.add_author("alice");
        let bob = repo.add_author("bob");
        repo.commit(
            alice,
            1,
            "init",
            vec![
                write("a.c", "void fa(void) {\nint x = 1;\nuse(x);\n}\n"),
                write("b.c", "void fb(void) {\nint y = 1;\nuse(y);\n}\n"),
            ],
        );
        // Bob introduces a cross-scope unused definition in a.c only.
        let c = repo.commit(
            bob,
            2,
            "rework fa",
            vec![write(
                "a.c",
                "void fa(void) {\nint x = 1;\nx = 2;\nuse(x);\n}\n",
            )],
        );
        let findings = analyze_commit(
            &repo,
            c,
            &[],
            &PruneConfig::default(),
            &RankConfig::default(),
        )
        .unwrap();
        assert_eq!(findings.changed_files, vec!["a.c".to_string()]);
        assert_eq!(findings.analysed_functions, 1);
        assert_eq!(findings.findings.len(), 1);
        assert_eq!(findings.findings[0].item.candidate.var_name, "x");
    }

    #[test]
    fn clean_commit_has_no_findings() {
        let mut repo = Repository::new();
        let a = repo.add_author("a");
        let c = repo.commit(
            a,
            1,
            "init",
            vec![write("a.c", "int f(int v) { return v + 1; }\n")],
        );
        let findings = analyze_commit(
            &repo,
            c,
            &[],
            &PruneConfig::default(),
            &RankConfig::default(),
        )
        .unwrap();
        assert!(findings.findings.is_empty());
    }

    #[test]
    fn snapshot_cache_hits_on_identical_trees() {
        let mut repo = Repository::new();
        let a = repo.add_author("a");
        let v1 = "int f(void) { return 1; }\n";
        let v2 = "int f(void) { return 2; }\n";
        let c1 = repo.commit(a, 1, "v1", vec![write("a.c", v1)]);
        let c2 = repo.commit(a, 2, "v2", vec![write("a.c", v2)]);
        let c3 = repo.commit(a, 3, "revert to v1", vec![write("a.c", v1)]);

        let obs = vc_obs::ObsSession::new();
        let _g = obs.install();
        let mut cache = SnapshotCache::new();
        for c in [c1, c2, c3] {
            analyze_commit_cached(
                &mut cache,
                &repo,
                c,
                &[],
                &PruneConfig::default(),
                &RankConfig::default(),
            )
            .unwrap();
        }
        // c3's tree is identical to c1's: two builds, one hit.
        assert_eq!(cache.len(), 2);
        assert_eq!(
            obs.registry
                .counter(vc_obs::names::INCREMENTAL_CACHE_MISSES),
            2
        );
        assert_eq!(
            obs.registry.counter(vc_obs::names::INCREMENTAL_CACHE_HITS),
            1
        );
        assert_eq!(obs.registry.counter(vc_obs::names::INCREMENTAL_COMMITS), 3);
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("vc-snap-{}-{}", std::process::id(), name))
    }

    #[test]
    fn snapshot_store_roundtrips() {
        let path = temp_path("roundtrip");
        let mut store = SnapshotStore::default();
        store.commit = Some(CommitId(7));
        store.findings.push(StoredFinding {
            function: "f".into(),
            variable: "x".into(),
            line: 3,
            file: "a.c".into(),
            scenario: "retval".into(),
            fingerprint: 0xDEAD_BEEF_0123_4567,
        });
        store.save(&path).unwrap();
        let loaded = SnapshotStore::load(&path);
        assert_eq!(loaded, store);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_snapshot_file_recovers_cold_and_counts() {
        // A file killed mid-write before the checksum line: structurally
        // incomplete, counted as recovered (not corrupt).
        let path = temp_path("truncated");
        std::fs::write(&path, "valuecheck-snapshot v3\ncommit 3\nfinding f\tx\n").unwrap();
        let obs = vc_obs::ObsSession::new();
        let loaded = {
            let _g = obs.install();
            SnapshotStore::load(&path)
        };
        assert_eq!(loaded, SnapshotStore::default());
        assert_eq!(
            obs.registry
                .counter(vc_obs::names::HARDEN_SNAPSHOT_RECOVERED),
            1
        );
        assert_eq!(
            obs.registry.counter(vc_obs::names::HARDEN_SNAPSHOT_CORRUPT),
            0
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checksum_mismatch_counts_as_corrupt_not_recovered() {
        let path = temp_path("bitrot");
        let mut store = SnapshotStore::default();
        store.commit = Some(CommitId(3));
        store.findings.push(StoredFinding {
            function: "f".into(),
            variable: "x".into(),
            line: 9,
            file: "a.c".into(),
            scenario: "param".into(),
            fingerprint: 7,
        });
        store.save(&path).unwrap();
        // Flip one content byte; the trailing checksum no longer matches.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("\tx\t", "\ty\t")).unwrap();
        let obs = vc_obs::ObsSession::new();
        let loaded = {
            let _g = obs.install();
            SnapshotStore::load(&path)
        };
        assert_eq!(loaded, SnapshotStore::default());
        assert_eq!(
            obs.registry.counter(vc_obs::names::HARDEN_SNAPSHOT_CORRUPT),
            1
        );
        assert_eq!(
            obs.registry
                .counter(vc_obs::names::HARDEN_SNAPSHOT_RECOVERED),
            0
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("vc-snap-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.snap");
        let mut store = SnapshotStore::default();
        store.commit = Some(CommitId(1));
        store.save(&path).unwrap();
        store.commit = Some(CommitId(2));
        store.save(&path).unwrap();
        assert_eq!(SnapshotStore::load(&path).commit, Some(CommitId(2)));
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name() != "store.snap")
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_save_removes_its_temp_file_and_counts() {
        let dir = std::env::temp_dir().join(format!("vc-snap-failsave-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Make the destination a non-empty directory: the temp file is
        // created and written, but the atomic rename over it must fail.
        let path = dir.join("store.snap");
        std::fs::create_dir_all(path.join("occupied")).unwrap();
        let obs = vc_obs::ObsSession::new();
        let result = {
            let _g = obs.install();
            let mut store = SnapshotStore::default();
            store.commit = Some(CommitId(1));
            store.save(&path)
        };
        assert!(result.is_err(), "rename over a non-empty dir must fail");
        assert_eq!(
            obs.registry
                .counter(vc_obs::names::HARDEN_SNAPSHOT_SAVE_FAILED),
            1
        );
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name() != "store.snap")
            .collect();
        assert!(leftovers.is_empty(), "temp debris left: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatched_snapshot_recovers_cold() {
        let path = temp_path("version");
        std::fs::write(&path, "valuecheck-snapshot v999\ncommit 3\n").unwrap();
        let obs = vc_obs::ObsSession::new();
        let loaded = {
            let _g = obs.install();
            SnapshotStore::load(&path)
        };
        assert_eq!(loaded, SnapshotStore::default());
        assert_eq!(
            obs.registry
                .counter(vc_obs::names::HARDEN_SNAPSHOT_RECOVERED),
            1
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_snapshot_file_is_a_silent_cold_start() {
        let path = temp_path("never-written");
        let obs = vc_obs::ObsSession::new();
        let loaded = {
            let _g = obs.install();
            SnapshotStore::load(&path)
        };
        assert_eq!(loaded, SnapshotStore::default());
        assert_eq!(
            obs.registry
                .counter(vc_obs::names::HARDEN_SNAPSHOT_RECOVERED),
            0
        );
    }

    #[test]
    fn analyze_commit_stored_persists_findings_across_runs() {
        let path = temp_path("stored-run");
        std::fs::remove_file(&path).ok();
        let mut repo = Repository::new();
        let alice = repo.add_author("alice");
        let bob = repo.add_author("bob");
        repo.commit(
            alice,
            1,
            "init",
            vec![write("a.c", "void fa(void) {\nint x = 1;\nuse(x);\n}\n")],
        );
        let c = repo.commit(
            bob,
            2,
            "rework fa",
            vec![write(
                "a.c",
                "void fa(void) {\nint x = 1;\nx = 2;\nuse(x);\n}\n",
            )],
        );
        let (findings, previous) = analyze_commit_stored(
            &path,
            &repo,
            c,
            &[],
            &PruneConfig::default(),
            &RankConfig::default(),
        )
        .unwrap();
        assert_eq!(findings.findings.len(), 1);
        assert_eq!(previous, SnapshotStore::default(), "first run is cold");
        // Second run sees the first run's store.
        let (_, previous) = analyze_commit_stored(
            &path,
            &repo,
            c,
            &[],
            &PruneConfig::default(),
            &RankConfig::default(),
        )
        .unwrap();
        assert_eq!(previous.commit, Some(c));
        assert_eq!(previous.findings.len(), 1);
        assert_eq!(previous.findings[0].variable, "x");
        assert_eq!(previous.findings[0].file, "a.c");
        assert_eq!(previous.findings[0].scenario, "overwritten");
        assert_ne!(
            previous.findings[0].fingerprint, 0,
            "stored findings carry a real fingerprint"
        );
        assert_eq!(
            previous.fingerprint_set().len(),
            1,
            "the store doubles as a baseline suppression set"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_v2_snapshot_recovers_cold() {
        // A v2 file (pre-fingerprint format) with a *valid* checksum: the
        // version gate — not the checksum — must reject it.
        let path = temp_path("legacy-v2");
        let body = "valuecheck-snapshot v2\ncommit 3\nfinding f\tx\t9\n";
        let sum = {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for &b in body.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        };
        std::fs::write(&path, format!("{body}checksum {sum:016x}\n")).unwrap();
        let obs = vc_obs::ObsSession::new();
        let loaded = {
            let _g = obs.install();
            SnapshotStore::load(&path)
        };
        assert_eq!(loaded, SnapshotStore::default());
        assert_eq!(
            obs.registry
                .counter(vc_obs::names::HARDEN_SNAPSHOT_RECOVERED),
            1
        );
        assert_eq!(
            obs.registry.counter(vc_obs::names::HARDEN_SNAPSHOT_CORRUPT),
            0
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn historical_snapshots_are_analyzable() {
        let mut repo = Repository::new();
        let a = repo.add_author("a");
        let c1 = repo.commit(
            a,
            1,
            "v1 with helper",
            vec![write("a.c", "int helper(void) { return 1; }\n")],
        );
        let _c2 = repo.commit(
            a,
            2,
            "v2 removes helper",
            vec![write("a.c", "int other(void) { return 2; }\n")],
        );
        // Analysing c1 sees the old tree.
        let f = analyze_commit(
            &repo,
            c1,
            &[],
            &PruneConfig::default(),
            &RankConfig::default(),
        )
        .unwrap();
        assert_eq!(f.analysed_functions, 1);
    }
}
