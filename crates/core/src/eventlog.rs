//! The serve event log: an append-only, size-rotated JSON-lines record of
//! every request a `vcheck serve` daemon answered.
//!
//! One line per request, written *after* the reply is on the wire so the
//! log never delays an answer. Each record carries the request's
//! `trace_id`, `seq`, `op`, outcome (`ok` / `error` / `shed` /
//! `quarantined`), latency in microseconds, the degradation flags
//! (deadline, rebuild), and — for scan/update requests — the funnel deltas
//! of that scan. The file is plain JSON lines, so `vcheck tail`, `jq`, or
//! a log shipper can all consume it.
//!
//! ## Rotation
//!
//! Appends go to the configured path until it exceeds `max_bytes`; the
//! file is then renamed to `<path>.1` (replacing any previous generation)
//! and a fresh file is started. At most two generations exist at any time,
//! bounding disk use at ~2×`max_bytes` regardless of daemon lifetime.
//! [`read_events`] reads `<path>.1` before `<path>`, so readers see one
//! continuous, oldest-first stream across the rotation boundary.
//!
//! Writing is best-effort by design: an unwritable log must never take
//! down the daemon or delay a reply, so I/O errors are swallowed after
//! counting the event as dropped.

use std::{
    fs::{File, OpenOptions},
    io::Write,
    path::{Path, PathBuf},
    time::{SystemTime, UNIX_EPOCH},
};

use vc_obs::Json;

/// Default rotation threshold (1 MiB) — roughly 4k records per generation.
pub const DEFAULT_MAX_BYTES: u64 = 1 << 20;

/// One parsed event-log record (the fields `vcheck tail` renders).
#[derive(Clone, Debug)]
pub struct Event {
    /// Milliseconds since the Unix epoch when the record was appended.
    pub ts_ms: u64,
    /// The request's monotonic trace id (0 for shed requests, which never
    /// reach the engine that assigns ids).
    pub trace_id: u64,
    /// The server-assigned request sequence number.
    pub seq: u64,
    /// The request op (`scan`, `update`, `status`, ...; `?` when unknown).
    pub op: String,
    /// `ok`, `error`, `shed`, or `quarantined`.
    pub outcome: String,
    /// Wall-clock latency of the request, in microseconds.
    pub latency_us: u64,
    /// Whether the request's deadline expired (partial reply).
    pub deadline_exceeded: bool,
    /// Whether the request ran against a cold (rebuilt) warm state.
    pub rebuilt: bool,
    /// Funnel deltas for scan/update requests: (raw, reported).
    pub funnel: Option<(u64, u64)>,
    /// The raw JSON record, for `--json` style passthrough.
    pub raw: Json,
}

impl Event {
    /// Parses one JSON-lines record. Unknown fields are ignored; missing
    /// fields default, so records from older daemons still render.
    pub fn parse(line: &str) -> Option<Event> {
        let raw = vc_obs::json::parse(line).ok()?;
        let int = |k: &str| raw.get(k).and_then(Json::as_i64).unwrap_or(0).max(0) as u64;
        let flag = |k: &str| raw.get(k).and_then(Json::as_bool).unwrap_or(false);
        let funnel = raw.get("funnel").map(|f| {
            let sub = |k: &str| f.get(k).and_then(Json::as_i64).unwrap_or(0).max(0) as u64;
            (sub("raw"), sub("reported"))
        });
        Some(Event {
            ts_ms: int("ts_ms"),
            trace_id: int("trace_id"),
            seq: int("seq"),
            op: raw
                .get("op")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            outcome: raw
                .get("outcome")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            latency_us: int("latency_us"),
            deadline_exceeded: flag("deadline_exceeded"),
            rebuilt: flag("rebuilt"),
            funnel,
            raw,
        })
    }

    /// One human-readable line (the `vcheck tail` output format).
    pub fn render(&self) -> String {
        let mut line = format!(
            "{:>13.3}  #{:<6} trace={:<6} {:<8} {:<11} {:>9.3}ms",
            self.ts_ms as f64 / 1000.0,
            self.seq,
            self.trace_id,
            self.op,
            self.outcome,
            self.latency_us as f64 / 1000.0,
        );
        if let Some((raw, reported)) = self.funnel {
            line.push_str(&format!("  raw={raw} reported={reported}"));
        }
        if self.rebuilt {
            line.push_str("  [rebuilt]");
        }
        if self.deadline_exceeded {
            line.push_str("  [deadline]");
        }
        line
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is before 1970).
pub fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// The append-side writer: open file handle, running size, rotation.
#[derive(Debug)]
pub struct EventLog {
    path: PathBuf,
    max_bytes: u64,
    file: Option<File>,
    written: u64,
    /// Records lost to I/O errors (reported via `status`, never fatal).
    dropped: u64,
}

impl EventLog {
    /// Opens (or creates) the log at `path`, appending to any existing
    /// content. `max_bytes` of 0 means the default threshold.
    pub fn open(path: &Path, max_bytes: u64) -> EventLog {
        let max_bytes = if max_bytes == 0 {
            DEFAULT_MAX_BYTES
        } else {
            max_bytes
        };
        let written = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let file = OpenOptions::new().create(true).append(true).open(path).ok();
        EventLog {
            path: path.to_path_buf(),
            max_bytes,
            file,
            written,
            dropped: 0,
        }
    }

    /// The rotated predecessor's path (`<path>.1`).
    pub fn rotated_path(path: &Path) -> PathBuf {
        let mut s = path.as_os_str().to_os_string();
        s.push(".1");
        PathBuf::from(s)
    }

    /// Records lost to I/O errors so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends one record, rotating first if the file is over the
    /// threshold. Never fails: errors increment `dropped` and are
    /// otherwise swallowed.
    pub fn append(&mut self, record: &Json) {
        if self.written >= self.max_bytes {
            self.rotate();
        }
        let line = record.to_string();
        let ok = match &mut self.file {
            Some(f) => writeln!(f, "{line}").and_then(|_| f.flush()).is_ok(),
            None => false,
        };
        if ok {
            self.written += line.len() as u64 + 1;
        } else {
            self.dropped += 1;
        }
    }

    fn rotate(&mut self) {
        self.file = None; // close before the rename (Windows-safe, cheap anywhere)
        let prev = Self::rotated_path(&self.path);
        let _ = std::fs::remove_file(&prev);
        let _ = std::fs::rename(&self.path, &prev);
        self.file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .ok();
        self.written = 0;
    }
}

/// Reads the full event stream, oldest first: the rotated generation
/// (`<path>.1`) if present, then the live file. Unparseable lines (torn
/// tails from a crash) are skipped, not fatal.
pub fn read_events(path: &Path) -> Vec<Event> {
    let mut events = Vec::new();
    for p in [EventLog::rotated_path(path), path.to_path_buf()] {
        if let Ok(text) = std::fs::read_to_string(&p) {
            events.extend(text.lines().filter_map(Event::parse));
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vc-eventlog-{}-{name}", std::process::id()))
    }

    fn record(seq: u64) -> Json {
        Json::Obj(vec![
            ("ts_ms".into(), Json::Int(1_000 + seq as i64)),
            ("trace_id".into(), Json::Int(seq as i64)),
            ("seq".into(), Json::Int(seq as i64)),
            ("op".into(), Json::Str("scan".into())),
            ("outcome".into(), Json::Str("ok".into())),
            ("latency_us".into(), Json::Int(1500)),
        ])
    }

    #[test]
    fn append_then_read_roundtrips() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(EventLog::rotated_path(&path));
        let mut log = EventLog::open(&path, 0);
        for seq in 1..=3 {
            log.append(&record(seq));
        }
        let events = read_events(&path);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 1);
        assert_eq!(events[2].trace_id, 3);
        assert_eq!(events[0].op, "scan");
        assert_eq!(events[0].outcome, "ok");
        assert_eq!(log.dropped(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rotation_keeps_one_predecessor_and_a_continuous_stream() {
        let path = tmp("rotate");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(EventLog::rotated_path(&path));
        // A tiny threshold: every ~2 records trip a rotation.
        let mut log = EventLog::open(&path, 200);
        for seq in 1..=20 {
            log.append(&record(seq));
        }
        assert!(EventLog::rotated_path(&path).exists(), "rotation happened");
        let events = read_events(&path);
        // The oldest generation beyond `.1` is gone; the surviving stream
        // is a contiguous, ordered suffix ending at the newest record.
        assert!(events.len() >= 2, "both generations contribute");
        assert_eq!(events.last().unwrap().seq, 20);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "oldest-first across the rotation boundary");
        for w in seqs.windows(2) {
            assert_eq!(w[1], w[0] + 1, "contiguous suffix: {seqs:?}");
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(EventLog::rotated_path(&path));
    }

    #[test]
    fn torn_lines_are_skipped_not_fatal() {
        let path = tmp("torn");
        std::fs::write(
            &path,
            "{\"seq\":1,\"op\":\"scan\",\"outcome\":\"ok\"}\n{\"seq\":2,\"op\":\"sc",
        )
        .unwrap();
        let events = read_events(&path);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].seq, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unwritable_path_counts_drops_and_never_panics() {
        let dir = std::env::temp_dir().join(format!("vc-eventlog-dir-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        // A directory is not appendable: every record drops.
        let mut log = EventLog::open(&dir, 0);
        log.append(&record(1));
        assert_eq!(log.dropped(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn render_is_stable_and_carries_flags() {
        let mut rec = record(7);
        if let Json::Obj(fields) = &mut rec {
            fields.push(("rebuilt".into(), Json::Bool(true)));
            fields.push((
                "funnel".into(),
                Json::Obj(vec![
                    ("raw".into(), Json::Int(4)),
                    ("reported".into(), Json::Int(2)),
                ]),
            ));
        }
        let ev = Event::parse(&rec.to_string()).unwrap();
        let line = ev.render();
        assert!(line.contains("#7"), "{line}");
        assert!(line.contains("trace=7"), "{line}");
        assert!(line.contains("raw=4 reported=2"), "{line}");
        assert!(line.contains("[rebuilt]"), "{line}");
        assert!(!line.contains("[deadline]"), "{line}");
    }
}
