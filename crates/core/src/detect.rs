//! Cross-scope unused-definition detection — the algorithm of Fig. 4.
//!
//! The detector consumes the per-function [`FnSummary`] (dead stores with
//! their §4.2 overwriter spans, escape set, call-result map) computed once
//! by `vc_dataflow::summary` and shared with the prune stage, instead of
//! re-solving liveness per consumer. Candidates are the summary's dead
//! stores, classified into the paper's scenarios.
//!
//! Exclusions mirror the paper: address-taken locals (the value may be read
//! through a pointer) are never candidates. The precise aliased-read set of
//! the pointer analysis is a subset of the address-taken set (local objects
//! only enter points-to sets through `&x`), so the escape check subsumes
//! the alias query and no eager whole-program pointer solve is needed.
//! Pointer facts are consulted on demand — per candidate, per
//! pointer-closed component — only to resolve indirect-call callees
//! ([`vc_pointer::demand::DemandPointer`]).

use vc_dataflow::summary::{
    build_summary,
    CallTarget,
    FnSummary,
    SigId,
    SigInterner,
    Summaries, //
};
use vc_ir::{
    ir::{
        Inst,
        LocalKind,
        Operand,
        StoreInfo,
        TempOrigin, //
    },
    FuncId,
    Function,
    Program, //
};
use vc_obs::Budget;
use vc_pointer::demand::DemandPointer;

use crate::{
    candidate::{
        Candidate,
        Scenario, //
    },
    harden::{
        self,
        FailStage,
        FailureRecord,
        HardenConfig, //
    },
};

/// Detector configuration.
#[derive(Clone, Copy, Debug)]
pub struct DetectConfig {
    /// Run the pointer analysis and drop aliased-read candidates (§4.1,
    /// "Pointer and Alias"). Disabling this is the alias-ablation mode.
    pub use_alias_analysis: bool,
    /// Field-sensitive pointer analysis (ablation knob; detection liveness
    /// is always field-sensitive, matching the paper).
    pub field_sensitive_pointers: bool,
}

impl Default for DetectConfig {
    fn default() -> Self {
        Self {
            use_alias_analysis: true,
            field_sensitive_pointers: true,
        }
    }
}

/// Detects unused-definition candidates in one function. Builds a one-off
/// summary and demand oracle; pipeline callers share them across functions
/// instead (see [`detect_program_hardened`]).
pub fn detect_function(prog: &Program, fid: FuncId) -> Vec<Candidate> {
    let interner = SigInterner::new(prog);
    let oracle = DemandPointer::new(prog, vc_pointer::Config::default(), true);
    let summary = build_summary(prog.func(fid), interner.sig_of(fid), Budget::UNLIMITED);
    detect_from_summary(prog.func(fid), fid, &summary, Some(&oracle))
}

/// One detection unit: build the function's summary under the liveness
/// [`Budget`], then derive its candidates. When the fixpoint is cut short
/// the candidates are still produced — from the partial facts — but marked
/// [`Candidate::low_confidence`] (the degradation ladder's "keep, don't
/// drop" tier).
pub(crate) fn detect_unit(
    prog: &Program,
    fid: FuncId,
    sig: SigId,
    oracle: Option<&DemandPointer>,
    budget: Budget,
) -> (FnSummary, Vec<Candidate>) {
    let f = prog.func(fid);
    let summary = build_summary(f, sig, budget);
    let cands = detect_from_summary(f, fid, &summary, oracle);
    (summary, cands)
}

/// Derives candidates from an already-built summary: each dead store
/// becomes one candidate, classified into the paper's scenarios. The
/// summary's dead list is in the detector's historical discovery order
/// (blocks ascending, instructions descending), so the final sort produces
/// byte-identical reports.
pub(crate) fn detect_from_summary(
    f: &Function,
    fid: FuncId,
    summary: &FnSummary,
    oracle: Option<&DemandPointer>,
) -> Vec<Candidate> {
    let mut out = Vec::with_capacity(summary.dead.len());
    for d in &summary.dead {
        // Fetch the store's value operand for classification; a summary is
        // always content-matched to `f`, so the lookup cannot miss (guarded
        // defensively anyway).
        let Some(Inst::Store { value, .. }) = f.block(d.block).insts.get(d.inst_idx) else {
            continue;
        };
        let local = f.local(d.key.local());
        let scenario = classify(f, fid, summary, oracle, value, &d.info);
        out.push(Candidate {
            func: fid,
            func_name: f.name.clone(),
            key: d.key,
            var_name: f.var_key_name(d.key),
            span: d.span,
            scenario,
            overwriters: d.overwriters.clone(),
            info: d.info.clone(),
            synthetic: local.kind == LocalKind::Synthetic,
            unused_attr: local.unused_attr,
            // Degraded facts (budget exhaustion) and degraded source
            // (parse recovery) both keep the candidate at reduced
            // confidence rather than dropping it.
            low_confidence: summary.exhausted || f.recovered,
        });
    }
    // Drop synthetic helper slots that are not call results (e.g. ternary
    // staging slots): they are compiler artifacts, not source definitions.
    out.retain(|c| !c.synthetic || matches!(c.scenario, Scenario::RetVal { .. }));
    out.sort_by(|a, b| (a.span, &a.var_name).cmp(&(b.span, &b.var_name)));
    out
}

/// Classifies a dead store into the paper's scenarios. Indirect call
/// results trigger the only pointer query detection ever makes, resolved
/// on demand from the candidate's pointer-closed component.
fn classify(
    f: &Function,
    fid: FuncId,
    summary: &FnSummary,
    oracle: Option<&DemandPointer>,
    value: &Operand,
    info: &StoreInfo,
) -> Scenario {
    if let StoreInfo::ParamInit { index } = info {
        return Scenario::Param { index: *index };
    }
    if let Operand::Temp(t) = value {
        if let Some(target) = summary.call_dsts.get(t) {
            let callees = match target {
                CallTarget::Direct(n) => vec![n.clone()],
                CallTarget::Indirect(ct) => match oracle {
                    Some(o) => o.resolve_fn_ptr(fid, *ct),
                    None => Vec::new(),
                },
            };
            return Scenario::RetVal { callees };
        }
        if matches!(
            f.temp_origins.get(t.0 as usize),
            Some(TempOrigin::Call(_)) | Some(TempOrigin::IndirectCall)
        ) {
            // A call result reaching the store through the origin table even
            // if the call-site map missed it (defensive).
            if let Some(TempOrigin::Call(name)) = f.temp_origins.get(t.0 as usize) {
                return Scenario::RetVal {
                    callees: vec![name.clone()],
                };
            }
            return Scenario::RetVal { callees: vec![] };
        }
    }
    Scenario::Overwritten
}

/// The result of a hardened whole-program detection pass.
#[derive(Debug, Default)]
pub struct DetectOutcome {
    /// Candidates from every function that completed.
    pub candidates: Vec<Candidate>,
    /// The per-function summaries built during detection, handed to the
    /// prune stage so it never re-solves liveness.
    pub summaries: Summaries,
    /// One record per poisoned function (panic inside the isolation
    /// boundary) or poisoned pointer solve.
    pub failures: Vec<FailureRecord>,
    /// Whether any demand pointer solve degraded (budget exhaustion or
    /// panic); indirect callees from that component resolve to the empty
    /// set, which only widens suppression.
    pub pointer_degraded: bool,
    /// Functions whose liveness budget ran out (their candidates are
    /// marked low-confidence).
    pub liveness_degraded: usize,
}

/// Detects candidates across the whole program.
///
/// Builds the demand pointer oracle once (when enabled) and shares it
/// across functions; components solve lazily, only when a candidate's
/// classification needs indirect-call callees. Runs with default hardening
/// (fault isolation on, no budgets); use [`detect_program_hardened`] for
/// explicit control.
pub fn detect_program(prog: &Program, config: DetectConfig) -> Vec<Candidate> {
    detect_program_hardened(prog, config, HardenConfig::default()).candidates
}

/// [`detect_program`] under a [`HardenConfig`]: pointer components and each
/// function's detection run inside unwind boundaries with their stage
/// budgets, implementing the degradation ladder:
///
/// - pointer budget exhausted (or a component solve panicked) → that
///   component's indirect callees resolve to the conservative empty set,
///   counted as `harden.degraded.pointer`;
/// - liveness budget exhausted → candidates kept, marked low-confidence,
///   counted as `harden.degraded.liveness`;
/// - panic inside one function's detection → that function is poisoned
///   (`harden.poisoned.detect`), everything else proceeds.
pub fn detect_program_hardened(
    prog: &Program,
    config: DetectConfig,
    hconf: HardenConfig,
) -> DetectOutcome {
    let mut out = DetectOutcome::default();
    let oracle = demand_oracle(prog, config, hconf);
    let interner = SigInterner::new(prog);
    detect_with(prog, oracle.as_ref(), &interner, hconf, &mut out);
    finalize_pointer_stage(oracle.as_ref(), &mut out);
    out
}

/// Builds the demand pointer oracle (component partition only — no
/// solving). Shared by the sequential detection loop above, the parallel
/// [`sentinel`](crate::sentinel) executor, and the serve engine.
pub(crate) fn demand_oracle(
    prog: &Program,
    config: DetectConfig,
    hconf: HardenConfig,
) -> Option<DemandPointer<'_>> {
    if !config.use_alias_analysis {
        return None;
    }
    let pointer_mem = vc_obs::MemScope::enter(vc_obs::alloc::SCOPE_POINTER);
    let oracle = DemandPointer::new(
        prog,
        vc_pointer::Config {
            field_sensitive: config.field_sensitive_pointers,
            budget: hconf.pointer_budget,
        },
        hconf.isolate,
    );
    pointer_mem.finish();
    Some(oracle)
}

/// Folds the oracle's accumulated degradations into the outcome after all
/// detection units ran: a poisoned component solve becomes a pointer-stage
/// failure record; budget exhaustion becomes the `harden.degraded.pointer`
/// tier (the partial relation was discarded — an under-approximation must
/// not feed indirect-call resolution).
pub(crate) fn finalize_pointer_stage(oracle: Option<&DemandPointer>, out: &mut DetectOutcome) {
    let Some(o) = oracle else { return };
    if let Some(message) = o.panic_message() {
        out.pointer_degraded = true;
        vc_obs::counter_inc(vc_obs::names::HARDEN_DEGRADED_POINTER);
        vc_obs::counter_inc(vc_obs::names::HARDEN_POISONED_POINTER);
        out.failures.insert(
            0,
            FailureRecord {
                stage: FailStage::Pointer,
                file: "<program>".to_string(),
                function: None,
                message,
            },
        );
    } else if o.degraded() {
        out.pointer_degraded = true;
        vc_obs::counter_inc(vc_obs::names::HARDEN_DEGRADED_POINTER);
    }
}

/// Per-function detection loop over a shared demand oracle, inserting each
/// completed function's summary into `out.summaries` for the prune stage.
fn detect_with(
    prog: &Program,
    oracle: Option<&DemandPointer>,
    interner: &SigInterner,
    hconf: HardenConfig,
    out: &mut DetectOutcome,
) {
    vc_obs::counter_add(vc_obs::names::DETECT_FUNCTIONS, prog.funcs.len() as u64);
    for fi in 0..prog.funcs.len() {
        let fid = FuncId(fi as u32);
        let f = prog.func(fid);
        let detected = harden::isolated(hconf.isolate, || {
            harden::failpoint(FailStage::Detect, &f.name);
            detect_unit(
                prog,
                fid,
                interner.sig_of(fid),
                oracle,
                hconf.liveness_budget,
            )
        });
        match detected {
            Ok((summary, cands)) => {
                if summary.exhausted {
                    out.liveness_degraded += 1;
                    vc_obs::counter_inc(vc_obs::names::HARDEN_DEGRADED_LIVENESS);
                }
                out.summaries.insert(fid, summary);
                out.candidates.extend(cands);
            }
            Err(message) => {
                vc_obs::counter_inc(vc_obs::names::HARDEN_POISONED_DETECT);
                out.failures.push(FailureRecord {
                    stage: FailStage::Detect,
                    file: prog.source.name(f.file).to_string(),
                    function: Some(f.name.clone()),
                    message,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates(src: &str) -> Vec<Candidate> {
        let prog = Program::build(&[("a.c", src)], &[]).unwrap();
        detect_program(&prog, DetectConfig::default())
    }

    fn names(cands: &[Candidate]) -> Vec<String> {
        cands.iter().map(|c| c.var_name.clone()).collect()
    }

    #[test]
    fn detects_overwritten_definition_with_overwriter_span() {
        let c = candidates("void f(void) { int x = 1; x = 2; use(x); }");
        assert_eq!(names(&c), vec!["x"]);
        assert_eq!(c[0].scenario, Scenario::Overwritten);
        assert_eq!(c[0].overwriters.len(), 1);
        assert_eq!(c[0].overwriters[0].line(), 1);
    }

    #[test]
    fn detects_unused_retval_scenario() {
        let c = candidates(
            "int get_permset(void);\n\
             int calc_mask(void);\n\
             void f(void) {\n\
               int ret = get_permset();\n\
               ret = calc_mask();\n\
               if (ret) { handle(); }\n\
             }",
        );
        assert_eq!(c.len(), 1);
        match &c[0].scenario {
            Scenario::RetVal { callees } => assert_eq!(callees, &vec!["get_permset".to_string()]),
            other => panic!("unexpected scenario {other:?}"),
        }
    }

    #[test]
    fn detects_overwritten_param_scenario() {
        let c = candidates(
            "int open_log(char *path, size_t bufsz) { bufsz = 1400; if (bufsz > 0) { go(path, \
             bufsz); } return 0; }",
        );
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].scenario, Scenario::Param { index: 1 });
        assert_eq!(c[0].var_name, "bufsz");
        // The overwriter is the `bufsz = 1400` line.
        assert_eq!(c[0].overwriters.len(), 1);
    }

    #[test]
    fn detects_ignored_call_result_as_synthetic_retval() {
        let c = candidates("int log_write(char *msg);\nvoid f(void) { log_write(\"hi\"); }");
        assert_eq!(c.len(), 1);
        assert!(c[0].synthetic);
        assert!(
            matches!(&c[0].scenario, Scenario::RetVal { callees } if callees == &vec!["log_write".to_string()])
        );
    }

    #[test]
    fn branch_overwriters_are_all_collected() {
        let c = candidates(
            "void f(int cond) { int x = 1; if (cond) { x = 2; } else { x = 3; } use(x); }",
        );
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].overwriters.len(), 2, "{:?}", c[0].overwriters);
    }

    #[test]
    fn aliased_locals_are_excluded() {
        let c = candidates(
            "int deref(int *p) { return *p; }\n\
             void f(void) { int x = 1; int r = deref(&x); x = 2; use(r); }",
        );
        // `x = 2` is dead but x is aliased (address taken): no candidates
        // for x. (r is used.)
        assert!(names(&c).iter().all(|n| n != "x"), "{c:?}");
    }

    #[test]
    fn indirect_call_retval_resolves_callees() {
        let c = candidates(
            "int ha(void) { return 1; }\n\
             int hb(void) { return 2; }\n\
             void f(int w) {\n\
               int *fp = ha;\n\
               if (w) { fp = hb; }\n\
               int r = fp();\n\
               r = 5;\n\
               use(r);\n\
             }",
        );
        let r = c.iter().find(|c| c.var_name == "r").expect("r candidate");
        match &r.scenario {
            Scenario::RetVal { callees } => {
                let mut cs = callees.clone();
                cs.sort();
                assert_eq!(cs, vec!["ha".to_string(), "hb".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ternary_staging_slots_are_not_reported() {
        let c = candidates("void f(int x) { int y = x ? 1 : 2; use(y); }");
        assert!(c.is_empty(), "{c:?}");
    }

    #[test]
    fn field_candidate_includes_whole_store_overwriter() {
        let c = candidates(
            "struct s { int a; int b; };\n\
             struct s mk(void);\n\
             void f(void) { struct s v; v.a = 1; v = mk(); use_s(v); }",
        );
        let fa = c
            .iter()
            .find(|c| c.var_name == "v#0")
            .expect("field candidate");
        assert_eq!(fa.overwriters.len(), 1);
    }

    #[test]
    fn poisoned_function_is_recorded_and_others_survive() {
        let prog = Program::build(
            &[(
                "a.c",
                "void poison_me(void) { int a = 1; a = 2; use(a); }\n\
                 void healthy(void) { int b = 1; b = 2; use(b); }",
            )],
            &[],
        )
        .unwrap();
        let _fp = harden::arm_failpoint(FailStage::Detect, "poison_me");
        let out = detect_program_hardened(&prog, DetectConfig::default(), HardenConfig::default());
        assert_eq!(out.failures.len(), 1);
        assert_eq!(out.failures[0].stage, FailStage::Detect);
        assert_eq!(out.failures[0].function.as_deref(), Some("poison_me"));
        assert_eq!(out.failures[0].file, "a.c");
        // The healthy function's candidate is still found.
        assert_eq!(out.candidates.len(), 1);
        assert_eq!(out.candidates[0].func_name, "healthy");
    }

    #[test]
    fn liveness_budget_exhaustion_keeps_low_confidence_candidates() {
        let prog = Program::build(
            &[(
                "a.c",
                "void f(int n) { int x = 1; x = 2; while (n) { n = n - 1; use(x); } }",
            )],
            &[],
        )
        .unwrap();
        let hconf = HardenConfig {
            liveness_budget: Budget::steps(1),
            ..HardenConfig::default()
        };
        let obs = vc_obs::ObsSession::new();
        let out = {
            let _g = obs.install();
            detect_program_hardened(&prog, DetectConfig::default(), hconf)
        };
        assert_eq!(out.liveness_degraded, 1);
        assert!(out.candidates.iter().all(|c| c.low_confidence));
        assert_eq!(
            obs.registry
                .counter(vc_obs::names::HARDEN_DEGRADED_LIVENESS),
            1
        );
        assert!(out.failures.is_empty());
    }

    #[test]
    fn pointer_budget_exhaustion_falls_back_to_conservative_oracle() {
        // Exhausting the Andersen budget must not kill the run or drop
        // alias-free findings: the exhausted component's partial relation is
        // discarded (indirect callees resolve to the conservative empty set,
        // which only widens suppression) and the degradation is flagged. `z`
        // has no pointer involvement and must survive; `y` is address-taken
        // and stays suppressed under both oracles. The indirect call gives
        // the demand oracle a component to actually solve (and exhaust).
        let src = "void write_it(int *p) { *p = 3; }\n\
                   int ha(void) { return 1; }\n\
                   void f(void) {\n\
                     int y = 1; y = 2; write_it(&y);\n\
                     int *fp = ha;\n\
                     int r = fp();\n\
                     r = 7;\n\
                     use(r);\n\
                     int z = 1; z = 2; use(z);\n\
                   }";
        let prog = Program::build(&[("a.c", src)], &[]).unwrap();
        let precise =
            detect_program_hardened(&prog, DetectConfig::default(), HardenConfig::default());
        assert!(!precise.pointer_degraded);
        let obs = vc_obs::ObsSession::new();
        let degraded = {
            let _g = obs.install();
            detect_program_hardened(
                &prog,
                DetectConfig::default(),
                HardenConfig {
                    pointer_budget: Budget::steps(0),
                    ..HardenConfig::default()
                },
            )
        };
        assert!(degraded.pointer_degraded);
        assert_eq!(
            obs.registry.counter(vc_obs::names::HARDEN_DEGRADED_POINTER),
            1
        );
        let names = |o: &DetectOutcome| {
            o.candidates
                .iter()
                .map(|c| c.var_name.clone())
                .collect::<Vec<_>>()
        };
        assert!(names(&degraded).contains(&"z".to_string()));
        assert!(!names(&degraded).contains(&"y".to_string()));
        // Degradation must never report MORE than the precise run.
        assert!(degraded.candidates.len() <= precise.candidates.len());
        assert!(degraded.failures.is_empty());
    }

    #[test]
    fn no_candidates_in_clean_code() {
        let c = candidates(
            "int sum(int *a, int n) {\n\
               int s = 0;\n\
               for (int i = 0; i < n; i = i + 1) { s = s + a[i]; }\n\
               return s;\n\
             }",
        );
        assert!(c.is_empty(), "{c:?}");
    }
}
