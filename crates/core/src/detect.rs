//! Cross-scope unused-definition detection — the algorithm of Fig. 4.
//!
//! The detector runs the liveness analysis of §4.1 extended with the
//! *define set* of §4.2: alongside the live-variable set, each program point
//! tracks, per variable, the set of next definitions downstream. When a
//! store is found dead, the define set names exactly the definitions that
//! overwrite it — the spans whose authors the authorship phase compares.
//!
//! Exclusions mirror the paper: address-taken locals (the value may be read
//! through a pointer) and locals the pointer analysis marks as aliased-read
//! are never candidates.

use std::collections::{
    BTreeMap,
    BTreeSet,
    HashMap, //
};

use vc_dataflow::{
    framework::{
        solve_budgeted,
        DataflowAnalysis,
        Direction, //
    },
    liveness::escaped_locals,
    varset::VarKeySet,
};
use vc_ir::{
    cfg::Cfg,
    ir::{
        BlockId,
        Callee,
        Inst,
        LocalKind,
        Operand,
        StoreInfo,
        TempId,
        TempOrigin, //
    },
    FuncId,
    Function,
    Program,
    Span,
    VarKey, //
};
use vc_obs::Budget;
use vc_pointer::{
    AliasUses,
    PointsTo, //
};

use crate::{
    candidate::{
        Candidate,
        Scenario, //
    },
    harden::{
        self,
        FailStage,
        FailureRecord,
        HardenConfig, //
    },
};

/// Detector configuration.
#[derive(Clone, Copy, Debug)]
pub struct DetectConfig {
    /// Run the pointer analysis and drop aliased-read candidates (§4.1,
    /// "Pointer and Alias"). Disabling this is the alias-ablation mode.
    pub use_alias_analysis: bool,
    /// Field-sensitive pointer analysis (ablation knob; detection liveness
    /// is always field-sensitive, matching the paper).
    pub field_sensitive_pointers: bool,
}

impl Default for DetectConfig {
    fn default() -> Self {
        Self {
            use_alias_analysis: true,
            field_sensitive_pointers: true,
        }
    }
}

/// The joint fact of Fig. 4: live variables plus the define set.
#[derive(Clone, Debug, PartialEq, Default)]
struct LiveDefFact {
    live: VarKeySet,
    /// For each key, the spans of the next definitions downstream.
    defs: BTreeMap<VarKey, BTreeSet<Span>>,
}

struct LiveDefAnalysis;

impl LiveDefFact {
    /// Applies one instruction's backward transfer.
    fn transfer(&mut self, inst: &Inst) {
        match inst {
            Inst::Load { place, .. } | Inst::AddrOf { place, .. } => {
                if let Some(key) = place.var_key() {
                    self.live.insert(key);
                }
            }
            Inst::Store { place, span, .. } => {
                if let Some(key) = place.var_key() {
                    self.live.remove_killed(key);
                    // This store becomes the (sole) next definition for
                    // everything it overwrites.
                    if let VarKey::Local(l) = key {
                        let stale: Vec<VarKey> = self
                            .defs
                            .range(VarKey::Field(l, 0)..=VarKey::Field(l, u32::MAX))
                            .map(|(k, _)| *k)
                            .collect();
                        for k in stale {
                            self.defs.remove(&k);
                        }
                    }
                    self.defs.insert(key, BTreeSet::from([*span]));
                }
            }
            Inst::Bin { .. } | Inst::Un { .. } | Inst::Call { .. } => {}
        }
    }

    /// The overwriting definitions of `key` at this point: exact entry plus,
    /// for field keys, whole-variable stores.
    fn overwriters(&self, key: VarKey) -> Vec<Span> {
        let mut out: BTreeSet<Span> = self.defs.get(&key).cloned().unwrap_or_default();
        if let VarKey::Field(l, _) = key {
            if let Some(extra) = self.defs.get(&VarKey::Local(l)) {
                out.extend(extra.iter().copied());
            }
        }
        out.into_iter().collect()
    }
}

impl DataflowAnalysis for LiveDefAnalysis {
    type Fact = LiveDefFact;
    const DIRECTION: Direction = Direction::Backward;

    fn boundary_fact(&self, _f: &Function) -> LiveDefFact {
        LiveDefFact::default()
    }

    fn init_fact(&self, _f: &Function) -> LiveDefFact {
        LiveDefFact::default()
    }

    fn join(&self, into: &mut LiveDefFact, from: &LiveDefFact) {
        into.live.union_with(&from.live);
        for (k, spans) in &from.defs {
            into.defs
                .entry(*k)
                .or_default()
                .extend(spans.iter().copied());
        }
    }

    fn transfer_block(&self, f: &Function, bb: BlockId, fact: &mut LiveDefFact) {
        for inst in f.block(bb).insts.iter().rev() {
            fact.transfer(inst);
        }
    }
}

/// Maps each call-result temp of a function to its possible callees.
fn call_result_map(
    prog: &Program,
    fid: FuncId,
    f: &Function,
    pts: Option<&PointsTo>,
) -> HashMap<TempId, Vec<String>> {
    let mut out = HashMap::new();
    for bb in &f.blocks {
        for inst in &bb.insts {
            if let Inst::Call {
                dst: Some(d),
                callee,
                ..
            } = inst
            {
                let names = match callee {
                    Callee::Direct(n) => vec![n.clone()],
                    Callee::Indirect(t) => match pts {
                        Some(p) => p.resolve_fn_ptr(fid, *t),
                        None => Vec::new(),
                    },
                };
                out.insert(*d, names);
            }
        }
    }
    let _ = prog;
    out
}

/// Detects unused-definition candidates in one function.
pub fn detect_function(
    prog: &Program,
    fid: FuncId,
    pts: Option<&PointsTo>,
    alias: Option<&AliasUses>,
) -> Vec<Candidate> {
    detect_function_budgeted(prog, fid, pts, alias, Budget::UNLIMITED).0
}

/// [`detect_function`] under a liveness [`Budget`]. When the fixpoint is
/// cut short the function's candidates are still produced — from the
/// partial facts — but marked [`Candidate::low_confidence`] (the
/// degradation ladder's "keep, don't drop" tier). Returns the candidates
/// and whether the budget ran out.
pub fn detect_function_budgeted(
    prog: &Program,
    fid: FuncId,
    pts: Option<&PointsTo>,
    alias: Option<&AliasUses>,
    budget: Budget,
) -> (Vec<Candidate>, bool) {
    let f = prog.func(fid);
    let cfg = Cfg::new(f);
    let facts = solve_budgeted(f, &cfg, &LiveDefAnalysis, budget);
    let escaped = escaped_locals(f);
    let retvals = call_result_map(prog, fid, f, pts);

    let excluded = |key: VarKey| -> bool {
        let l = key.local();
        if escaped.contains(&l) {
            return true;
        }
        if let Some(a) = alias {
            if a.is_aliased_read(fid, l) {
                return true;
            }
        }
        false
    };

    let mut out = Vec::new();
    for (bid, bb) in f.iter_blocks() {
        let mut fact = facts.exit(bid).clone();
        for inst in bb.insts.iter().rev() {
            if let Inst::Store {
                place,
                value,
                info,
                span,
            } = inst
            {
                if let Some(key) = place.var_key() {
                    if !fact.live.contains_covering(key) && !excluded(key) {
                        let local = f.local(key.local());
                        let scenario = classify(f, &retvals, value, info);
                        out.push(Candidate {
                            func: fid,
                            func_name: f.name.clone(),
                            key,
                            var_name: f.var_key_name(key),
                            span: *span,
                            scenario,
                            overwriters: fact.overwriters(key),
                            info: info.clone(),
                            synthetic: local.kind == LocalKind::Synthetic,
                            unused_attr: local.unused_attr,
                            // Degraded facts (budget exhaustion) and degraded
                            // source (parse recovery) both keep the candidate
                            // at reduced confidence rather than dropping it.
                            low_confidence: facts.exhausted || f.recovered,
                        });
                    }
                }
            }
            fact.transfer(inst);
        }
    }
    // Drop synthetic helper slots that are not call results (e.g. ternary
    // staging slots): they are compiler artifacts, not source definitions.
    out.retain(|c| !c.synthetic || matches!(c.scenario, Scenario::RetVal { .. }));
    out.sort_by_key(|c| (c.span, c.var_name.clone()));
    (out, facts.exhausted)
}

/// Classifies a dead store into the paper's scenarios.
fn classify(
    f: &Function,
    retvals: &HashMap<TempId, Vec<String>>,
    value: &Operand,
    info: &StoreInfo,
) -> Scenario {
    if let StoreInfo::ParamInit { index } = info {
        return Scenario::Param { index: *index };
    }
    if let Operand::Temp(t) = value {
        if let Some(callees) = retvals.get(t) {
            return Scenario::RetVal {
                callees: callees.clone(),
            };
        }
        if matches!(
            f.temp_origins.get(t.0 as usize),
            Some(TempOrigin::Call(_)) | Some(TempOrigin::IndirectCall)
        ) {
            // A call result reaching the store through the origin table even
            // if the call-site map missed it (defensive).
            if let Some(TempOrigin::Call(name)) = f.temp_origins.get(t.0 as usize) {
                return Scenario::RetVal {
                    callees: vec![name.clone()],
                };
            }
            return Scenario::RetVal { callees: vec![] };
        }
    }
    Scenario::Overwritten
}

/// The result of a hardened whole-program detection pass.
#[derive(Debug, Default)]
pub struct DetectOutcome {
    /// Candidates from every function that completed.
    pub candidates: Vec<Candidate>,
    /// One record per poisoned function (panic inside the isolation
    /// boundary) or poisoned pointer solve.
    pub failures: Vec<FailureRecord>,
    /// Whether the pointer stage fell back to the conservative
    /// field-insensitive oracle (budget exhaustion or panic).
    pub pointer_degraded: bool,
    /// Functions whose liveness budget ran out (their candidates are
    /// marked low-confidence).
    pub liveness_degraded: usize,
}

/// Detects candidates across the whole program.
///
/// Runs the pointer analysis once (when enabled) and reuses it for every
/// function, mirroring the paper's per-bitcode SVF invocation. Runs with
/// default hardening (fault isolation on, no budgets); use
/// [`detect_program_hardened`] for explicit control.
pub fn detect_program(prog: &Program, config: DetectConfig) -> Vec<Candidate> {
    detect_program_hardened(prog, config, HardenConfig::default()).candidates
}

/// [`detect_program`] under a [`HardenConfig`]: the pointer solve and each
/// function's detection run inside unwind boundaries with their stage
/// budgets, implementing the degradation ladder:
///
/// - pointer budget exhausted (or pointer solve panicked) → conservative
///   field-insensitive may-alias oracle, counted as
///   `harden.degraded.pointer`;
/// - liveness budget exhausted → candidates kept, marked low-confidence,
///   counted as `harden.degraded.liveness`;
/// - panic inside one function's detection → that function is poisoned
///   (`harden.poisoned.detect`), everything else proceeds.
pub fn detect_program_hardened(
    prog: &Program,
    config: DetectConfig,
    hconf: HardenConfig,
) -> DetectOutcome {
    let mut out = DetectOutcome::default();
    let (pts, alias) = pointer_stage(prog, config, hconf, &mut out);
    detect_with(prog, pts, alias, hconf, out)
}

/// The whole-program pointer/alias stage, isolated as one unit. Shared by
/// the sequential detection loop above and the parallel
/// [`sentinel`](crate::sentinel) executor: it runs once, single-threaded,
/// before any per-function unit is scheduled, and its degradations are
/// recorded into `out`.
pub(crate) fn pointer_stage(
    prog: &Program,
    config: DetectConfig,
    hconf: HardenConfig,
    out: &mut DetectOutcome,
) -> (Option<PointsTo>, Option<AliasUses>) {
    if !config.use_alias_analysis {
        return (None, None);
    }
    let pointer_mem = vc_obs::MemScope::enter(vc_obs::alloc::SCOPE_POINTER);
    let solved = harden::isolated(hconf.isolate, || {
        let pts = PointsTo::solve_with(
            prog,
            vc_pointer::Config {
                field_sensitive: config.field_sensitive_pointers,
                budget: hconf.pointer_budget,
            },
        );
        let exhausted = pts.exhausted();
        let uses = if exhausted {
            AliasUses::conservative(prog)
        } else {
            AliasUses::compute(prog, &pts)
        };
        (pts, uses, exhausted)
    });
    pointer_mem.finish();
    match solved {
        Ok((pts, uses, exhausted)) => {
            if exhausted {
                out.pointer_degraded = true;
                vc_obs::counter_inc(vc_obs::names::HARDEN_DEGRADED_POINTER);
                // The partial points-to relation is discarded: an
                // under-approximation must not feed may-alias queries
                // or indirect-call resolution.
                (None, Some(uses))
            } else {
                (Some(pts), Some(uses))
            }
        }
        Err(message) => {
            out.pointer_degraded = true;
            vc_obs::counter_inc(vc_obs::names::HARDEN_DEGRADED_POINTER);
            vc_obs::counter_inc(vc_obs::names::HARDEN_POISONED_POINTER);
            out.failures.push(FailureRecord {
                stage: FailStage::Pointer,
                file: "<program>".to_string(),
                function: None,
                message,
            });
            (None, Some(AliasUses::conservative(prog)))
        }
    }
}

/// Per-function detection loop over an already-settled pointer stage.
fn detect_with(
    prog: &Program,
    pts: Option<PointsTo>,
    alias: Option<AliasUses>,
    hconf: HardenConfig,
    mut out: DetectOutcome,
) -> DetectOutcome {
    vc_obs::counter_add(vc_obs::names::DETECT_FUNCTIONS, prog.funcs.len() as u64);
    for fi in 0..prog.funcs.len() {
        let fid = FuncId(fi as u32);
        let f = prog.func(fid);
        let detected = harden::isolated(hconf.isolate, || {
            harden::failpoint(FailStage::Detect, &f.name);
            detect_function_budgeted(
                prog,
                fid,
                pts.as_ref(),
                alias.as_ref(),
                hconf.liveness_budget,
            )
        });
        match detected {
            Ok((cands, exhausted)) => {
                if exhausted {
                    out.liveness_degraded += 1;
                    vc_obs::counter_inc(vc_obs::names::HARDEN_DEGRADED_LIVENESS);
                }
                out.candidates.extend(cands);
            }
            Err(message) => {
                vc_obs::counter_inc(vc_obs::names::HARDEN_POISONED_DETECT);
                out.failures.push(FailureRecord {
                    stage: FailStage::Detect,
                    file: prog.source.name(f.file).to_string(),
                    function: Some(f.name.clone()),
                    message,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates(src: &str) -> Vec<Candidate> {
        let prog = Program::build(&[("a.c", src)], &[]).unwrap();
        detect_program(&prog, DetectConfig::default())
    }

    fn names(cands: &[Candidate]) -> Vec<String> {
        cands.iter().map(|c| c.var_name.clone()).collect()
    }

    #[test]
    fn detects_overwritten_definition_with_overwriter_span() {
        let c = candidates("void f(void) { int x = 1; x = 2; use(x); }");
        assert_eq!(names(&c), vec!["x"]);
        assert_eq!(c[0].scenario, Scenario::Overwritten);
        assert_eq!(c[0].overwriters.len(), 1);
        assert_eq!(c[0].overwriters[0].line(), 1);
    }

    #[test]
    fn detects_unused_retval_scenario() {
        let c = candidates(
            "int get_permset(void);\n\
             int calc_mask(void);\n\
             void f(void) {\n\
               int ret = get_permset();\n\
               ret = calc_mask();\n\
               if (ret) { handle(); }\n\
             }",
        );
        assert_eq!(c.len(), 1);
        match &c[0].scenario {
            Scenario::RetVal { callees } => assert_eq!(callees, &vec!["get_permset".to_string()]),
            other => panic!("unexpected scenario {other:?}"),
        }
    }

    #[test]
    fn detects_overwritten_param_scenario() {
        let c = candidates(
            "int open_log(char *path, size_t bufsz) { bufsz = 1400; if (bufsz > 0) { go(path, \
             bufsz); } return 0; }",
        );
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].scenario, Scenario::Param { index: 1 });
        assert_eq!(c[0].var_name, "bufsz");
        // The overwriter is the `bufsz = 1400` line.
        assert_eq!(c[0].overwriters.len(), 1);
    }

    #[test]
    fn detects_ignored_call_result_as_synthetic_retval() {
        let c = candidates("int log_write(char *msg);\nvoid f(void) { log_write(\"hi\"); }");
        assert_eq!(c.len(), 1);
        assert!(c[0].synthetic);
        assert!(
            matches!(&c[0].scenario, Scenario::RetVal { callees } if callees == &vec!["log_write".to_string()])
        );
    }

    #[test]
    fn branch_overwriters_are_all_collected() {
        let c = candidates(
            "void f(int cond) { int x = 1; if (cond) { x = 2; } else { x = 3; } use(x); }",
        );
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].overwriters.len(), 2, "{:?}", c[0].overwriters);
    }

    #[test]
    fn aliased_locals_are_excluded() {
        let c = candidates(
            "int deref(int *p) { return *p; }\n\
             void f(void) { int x = 1; int r = deref(&x); x = 2; use(r); }",
        );
        // `x = 2` is dead but x is aliased (address taken): no candidates
        // for x. (r is used.)
        assert!(names(&c).iter().all(|n| n != "x"), "{c:?}");
    }

    #[test]
    fn indirect_call_retval_resolves_callees() {
        let c = candidates(
            "int ha(void) { return 1; }\n\
             int hb(void) { return 2; }\n\
             void f(int w) {\n\
               int *fp = ha;\n\
               if (w) { fp = hb; }\n\
               int r = fp();\n\
               r = 5;\n\
               use(r);\n\
             }",
        );
        let r = c.iter().find(|c| c.var_name == "r").expect("r candidate");
        match &r.scenario {
            Scenario::RetVal { callees } => {
                let mut cs = callees.clone();
                cs.sort();
                assert_eq!(cs, vec!["ha".to_string(), "hb".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ternary_staging_slots_are_not_reported() {
        let c = candidates("void f(int x) { int y = x ? 1 : 2; use(y); }");
        assert!(c.is_empty(), "{c:?}");
    }

    #[test]
    fn field_candidate_includes_whole_store_overwriter() {
        let c = candidates(
            "struct s { int a; int b; };\n\
             struct s mk(void);\n\
             void f(void) { struct s v; v.a = 1; v = mk(); use_s(v); }",
        );
        let fa = c
            .iter()
            .find(|c| c.var_name == "v#0")
            .expect("field candidate");
        assert_eq!(fa.overwriters.len(), 1);
    }

    #[test]
    fn poisoned_function_is_recorded_and_others_survive() {
        let prog = Program::build(
            &[(
                "a.c",
                "void poison_me(void) { int a = 1; a = 2; use(a); }\n\
                 void healthy(void) { int b = 1; b = 2; use(b); }",
            )],
            &[],
        )
        .unwrap();
        let _fp = harden::arm_failpoint(FailStage::Detect, "poison_me");
        let out = detect_program_hardened(&prog, DetectConfig::default(), HardenConfig::default());
        assert_eq!(out.failures.len(), 1);
        assert_eq!(out.failures[0].stage, FailStage::Detect);
        assert_eq!(out.failures[0].function.as_deref(), Some("poison_me"));
        assert_eq!(out.failures[0].file, "a.c");
        // The healthy function's candidate is still found.
        assert_eq!(out.candidates.len(), 1);
        assert_eq!(out.candidates[0].func_name, "healthy");
    }

    #[test]
    fn liveness_budget_exhaustion_keeps_low_confidence_candidates() {
        let prog = Program::build(
            &[(
                "a.c",
                "void f(int n) { int x = 1; x = 2; while (n) { n = n - 1; use(x); } }",
            )],
            &[],
        )
        .unwrap();
        let hconf = HardenConfig {
            liveness_budget: Budget::steps(1),
            ..HardenConfig::default()
        };
        let obs = vc_obs::ObsSession::new();
        let out = {
            let _g = obs.install();
            detect_program_hardened(&prog, DetectConfig::default(), hconf)
        };
        assert_eq!(out.liveness_degraded, 1);
        assert!(out.candidates.iter().all(|c| c.low_confidence));
        assert_eq!(
            obs.registry
                .counter(vc_obs::names::HARDEN_DEGRADED_LIVENESS),
            1
        );
        assert!(out.failures.is_empty());
    }

    #[test]
    fn pointer_budget_exhaustion_falls_back_to_conservative_oracle() {
        // Exhausting the Andersen budget must not kill the run or drop
        // alias-free findings: the detector swaps in the conservative
        // address-taken oracle (a superset of the precise aliased-read set,
        // so suppression only grows) and flags the degradation. `z` has no
        // pointer involvement and must survive; `y` is address-taken and
        // stays suppressed under both oracles.
        let src = "void write_it(int *p) { *p = 3; }\n\
                   void f(void) { int y = 1; y = 2; write_it(&y); int z = 1; z = 2; use(z); }";
        let prog = Program::build(&[("a.c", src)], &[]).unwrap();
        let precise =
            detect_program_hardened(&prog, DetectConfig::default(), HardenConfig::default());
        assert!(!precise.pointer_degraded);
        let obs = vc_obs::ObsSession::new();
        let degraded = {
            let _g = obs.install();
            detect_program_hardened(
                &prog,
                DetectConfig::default(),
                HardenConfig {
                    pointer_budget: Budget::steps(0),
                    ..HardenConfig::default()
                },
            )
        };
        assert!(degraded.pointer_degraded);
        assert_eq!(
            obs.registry.counter(vc_obs::names::HARDEN_DEGRADED_POINTER),
            1
        );
        let names = |o: &DetectOutcome| {
            o.candidates
                .iter()
                .map(|c| c.var_name.clone())
                .collect::<Vec<_>>()
        };
        assert!(names(&degraded).contains(&"z".to_string()));
        assert!(!names(&degraded).contains(&"y".to_string()));
        // Degradation must never report MORE than the precise run.
        assert!(degraded.candidates.len() <= precise.candidates.len());
        assert!(degraded.failures.is_empty());
    }

    #[test]
    fn no_candidates_in_clean_code() {
        let c = candidates(
            "int sum(int *a, int n) {\n\
               int s = 0;\n\
               for (int i = 0; i < n; i = i + 1) { s = s + a[i]; }\n\
               return s;\n\
             }",
        );
        assert!(c.is_empty(), "{c:?}");
    }
}
