//! Property tests for the ValueCheck pipeline: detection is a subset of the
//! raw dead-store analysis, ranking is a permutation, and the pipeline is
//! deterministic and total over arbitrary generated programs and histories.
//!
//! Each property runs as a deterministic loop over cases drawn from a
//! seeded [`SplitMix64`]; a failing case prints its seed so it can be
//! replayed exactly.

use valuecheck::{
    detect::{
        detect_program,
        DetectConfig, //
    },
    pipeline::{
        run,
        Options, //
    },
    rank::{
        rank,
        RankConfig, //
    },
    AuthorshipCtx,
};
use vc_dataflow::dead_stores;
use vc_ir::{
    cfg::Cfg,
    testing::source_from_seed,
    Program, //
};
use vc_obs::SplitMix64;
use vc_vcs::{
    FileWrite,
    Repository, //
};

fn build(seed: u64) -> Program {
    let src = source_from_seed(seed);
    Program::build(&[("g.c", src.as_str())], &[]).expect("generated source builds")
}

/// A single-author history matching the generated source.
fn repo_for(seed: u64) -> Repository {
    let src = source_from_seed(seed);
    let mut repo = Repository::new();
    let a = repo.add_author("solo");
    repo.commit(
        a,
        1_000,
        "import",
        vec![FileWrite {
            path: "g.c".into(),
            content: src,
        }],
    );
    repo
}

/// Every detector candidate corresponds to a raw dead store at the same
/// span (the detector adds classification, never new positives).
#[test]
fn candidates_are_dead_stores() {
    let mut rng = SplitMix64::new(0xE1);
    for _ in 0..48 {
        let seed = rng.next_u64();
        let prog = build(seed);
        let cands = detect_program(&prog, DetectConfig::default());
        for c in &cands {
            let f = prog.func(c.func);
            let cfg = Cfg::new(f);
            let dead = dead_stores(f, &cfg);
            assert!(
                dead.iter().any(|d| d.span == c.span && d.key == c.key),
                "seed {seed}: candidate {}:{} has no matching dead store",
                c.func_name,
                c.var_name
            );
        }
    }
}

/// Disabling alias analysis can only add candidates.
#[test]
fn alias_analysis_only_suppresses() {
    let mut rng = SplitMix64::new(0xE2);
    for _ in 0..48 {
        let seed = rng.next_u64();
        let prog = build(seed);
        let with = detect_program(&prog, DetectConfig::default());
        let without = detect_program(
            &prog,
            DetectConfig {
                use_alias_analysis: false,
                field_sensitive_pointers: true,
            },
        );
        assert!(without.len() >= with.len(), "seed {seed}");
    }
}

/// Ranking permutes its input without loss or duplication.
#[test]
fn ranking_is_a_permutation() {
    let mut rng = SplitMix64::new(0xE3);
    for _ in 0..48 {
        let seed = rng.next_u64();
        let prog = build(seed);
        let repo = repo_for(seed);
        let cands = detect_program(&prog, DetectConfig::default());
        let attributed = AuthorshipCtx::new(&prog, &repo).attribute_all(&cands);
        let mut before: Vec<String> = attributed
            .iter()
            .map(|a| format!("{}:{}", a.candidate.func_name, a.candidate.var_name))
            .collect();
        let ranked = rank(&prog, &repo, &RankConfig::default(), attributed);
        let mut after: Vec<String> = ranked
            .iter()
            .map(|r| {
                format!(
                    "{}:{}",
                    r.item.candidate.func_name, r.item.candidate.var_name
                )
            })
            .collect();
        before.sort();
        after.sort();
        assert_eq!(before, after, "seed {seed}");
    }
}

/// With a single-author history nothing is cross-scope... except return
/// values of library functions, which the paper treats as a different
/// author. Verify exactly that dichotomy.
#[test]
fn single_author_cross_scope_is_library_retval_only() {
    let mut rng = SplitMix64::new(0xE4);
    for _ in 0..48 {
        let seed = rng.next_u64();
        let prog = build(seed);
        let repo = repo_for(seed);
        let cands = detect_program(&prog, DetectConfig::default());
        let attributed = AuthorshipCtx::new(&prog, &repo).attribute_all(&cands);
        for a in &attributed {
            if a.cross_scope {
                match &a.candidate.scenario {
                    valuecheck::Scenario::RetVal { callees } => {
                        assert!(
                            callees.iter().any(|c| !prog.defines_function(c)),
                            "seed {seed}: cross-scope retval with only in-project callees"
                        );
                    }
                    other => panic!("seed {seed}: unexpected cross-scope {other:?}"),
                }
            }
        }
    }
}

/// The full pipeline is total and deterministic over arbitrary programs.
#[test]
fn pipeline_is_total_and_deterministic() {
    let mut rng = SplitMix64::new(0xE5);
    for _ in 0..48 {
        let seed = rng.next_u64();
        let prog = build(seed);
        let repo = repo_for(seed);
        let a = run(&prog, &repo, &Options::paper());
        let b = run(&prog, &repo, &Options::paper());
        assert_eq!(a.raw_candidates, b.raw_candidates, "seed {seed}");
        assert_eq!(a.detected(), b.detected(), "seed {seed}");
        let ra: Vec<_> = a
            .report
            .rows
            .iter()
            .map(|r| (&r.function, &r.variable))
            .collect();
        let rb: Vec<_> = b
            .report
            .rows
            .iter()
            .map(|r| (&r.function, &r.variable))
            .collect();
        assert_eq!(ra, rb, "seed {seed}");
    }
}
