//! Integration contract of `vcheck serve` telemetry and `vcheck tail`,
//! against the real binary (see DESIGN.md §16).
//!
//! - `{"op":"status"}` works before the first scan: well-formed reply,
//!   `null` percentiles (never NaN or a panic), exit 0 on shutdown;
//! - `--trace` / `--metrics-json` flush on shutdown with the same export
//!   schemas as batch `vcheck scan`;
//! - `--event-log` appends one record per request; `vcheck tail` renders
//!   the stream with `--since` / `--op` / `--json` filters and exits 2 on
//!   a missing log.

use std::{
    fs,
    io::Write,
    path::{Path, PathBuf},
    process::{Command, Output, Stdio},
};

use vc_obs::Json;

const BUGGY_FN: &str = "int lib_a(void);\n\
                        int has_bug(void) {\n\
                        int got = lib_a();\n\
                        got = 2;\n\
                        return got;\n\
                        }\n";

fn project(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vc-serve-it-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    for (file, text) in files {
        fs::write(dir.join(file), text).unwrap();
    }
    dir
}

/// Runs `vcheck serve` over the given request lines, returning the exit
/// code and one parsed reply per line.
fn serve(dir: &Path, extra_args: &[&str], requests: &[&str]) -> (i32, Vec<Json>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_vcheck"))
        .arg("serve")
        .arg(dir)
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("vcheck serve spawns");
    {
        let stdin = child.stdin.as_mut().unwrap();
        for line in requests {
            writeln!(stdin, "{line}").unwrap();
        }
    }
    let out = child.wait_with_output().expect("serve reaped");
    let replies = String::from_utf8(out.stdout)
        .unwrap()
        .lines()
        .map(|l| vc_obs::json::parse(l).expect("reply is JSON"))
        .collect();
    (out.status.code().unwrap_or(-1), replies)
}

fn tail(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_vcheck"))
        .arg("tail")
        .args(args)
        .output()
        .expect("vcheck tail runs")
}

#[test]
fn status_before_first_scan_is_well_formed_and_exits_zero() {
    let dir = project("coldstatus", &[("a.c", BUGGY_FN)]);
    let (code, replies) = serve(&dir, &[], &["{\"op\":\"status\"}", "{\"op\":\"shutdown\"}"]);
    assert_eq!(code, 0);
    assert_eq!(replies.len(), 2);
    let status = &replies[0];
    assert_eq!(status.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(status.get("warm").and_then(Json::as_bool), Some(false));
    assert_eq!(
        status.get("schema_version").and_then(Json::as_i64),
        Some(vc_obs::METRICS_SCHEMA_VERSION)
    );
    assert!(status.get("uptime_ms").and_then(Json::as_i64).is_some());
    assert_eq!(status.get("trace_id").and_then(Json::as_i64), Some(1));
    // No scan has ever run: scan/update percentiles are null, not NaN.
    for op in ["scan", "update"] {
        let o = status.get("ops").and_then(|ops| ops.get(op)).unwrap();
        assert_eq!(o.get("count").and_then(Json::as_i64), Some(0), "{op}");
        for pct in ["p50_us", "p95_us", "p99_us"] {
            assert_eq!(o.get(pct), Some(&Json::Null), "{op}.{pct}");
        }
    }
    let text = status.to_string();
    assert!(!text.contains("NaN") && !text.contains("nan"), "{text}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn telemetry_files_flush_and_tail_renders_the_event_log() {
    let dir = project("flush", &[("a.c", BUGGY_FN)]);
    let trace = dir.join("serve.trace.json");
    let metrics = dir.join("serve.metrics.json");
    let log = dir.join("serve.events");
    let (code, replies) = serve(
        &dir,
        &[
            "--trace",
            trace.to_str().unwrap(),
            "--metrics-json",
            metrics.to_str().unwrap(),
            "--event-log",
            log.to_str().unwrap(),
        ],
        &[
            "{\"op\":\"scan\"}",
            "not even json",
            "{\"op\":\"status\"}",
            "{\"op\":\"shutdown\"}",
        ],
    );
    assert_eq!(code, 0);
    assert_eq!(replies.len(), 4);
    // Every reply — ok, error, status, shutdown — carries its trace id.
    let ids: Vec<i64> = replies
        .iter()
        .map(|r| r.get("trace_id").and_then(Json::as_i64).unwrap())
        .collect();
    assert_eq!(ids, vec![1, 2, 3, 4]);
    // The status funnel balances mid-stream: 3 requests so far, 1 error.
    let counters = replies[2].get("counters").unwrap();
    let c = |n: &str| counters.get(n).and_then(Json::as_i64).unwrap();
    assert_eq!(
        c("serve.requests"),
        c("serve.replies") + c("serve.shed") + c("serve.errors") + c("serve.quarantined")
    );
    assert_eq!(c("serve.errors"), 1);
    assert_eq!(
        replies[2].get("event_log_dropped").and_then(Json::as_i64),
        Some(0)
    );

    // Metrics flush: the batch export schema, serve histograms included.
    let m = vc_obs::json::parse(&fs::read_to_string(&metrics).unwrap()).unwrap();
    assert_eq!(
        m.get("schema_version").and_then(Json::as_i64),
        Some(vc_obs::METRICS_SCHEMA_VERSION)
    );
    assert_eq!(
        m.get("env").and_then(Json::as_str),
        Some(vc_obs::env_fingerprint().as_str())
    );
    assert!(m
        .get("histograms")
        .and_then(|h| h.get("serve.latency.scan"))
        .is_some());

    // Trace flush: Chrome trace_event JSON with the request span tree.
    let t = fs::read_to_string(&trace).unwrap();
    for span in ["serve.request", "serve.parse", "pipeline.run"] {
        assert!(t.contains(span), "trace missing {span}");
    }

    // `vcheck tail` renders every request, oldest first.
    let out = tail(&[log.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "{text}");
    assert!(lines[0].contains("trace=1") && lines[0].contains("scan"));
    assert!(lines[1].contains("error"), "{}", lines[1]);
    assert!(lines[3].contains("shutdown"));

    // --op filters to one op; --json emits the raw records.
    let out = tail(&[log.to_str().unwrap(), "--op", "scan"]);
    let text = String::from_utf8(out.stdout).unwrap();
    assert_eq!(text.lines().count(), 1, "{text}");
    assert!(text.contains("raw="), "scan records carry funnel deltas");
    let out = tail(&[log.to_str().unwrap(), "--op", "scan", "--json"]);
    let text = String::from_utf8(out.stdout).unwrap();
    let rec = vc_obs::json::parse(text.lines().next().unwrap()).unwrap();
    assert_eq!(rec.get("op").and_then(Json::as_str), Some("scan"));
    assert_eq!(rec.get("outcome").and_then(Json::as_str), Some("ok"));
    assert!(rec.get("funnel").is_some());

    // --since 0 means "events newer than now": nothing qualifies.
    let out = tail(&[log.to_str().unwrap(), "--since", "0"]);
    assert_eq!(String::from_utf8(out.stdout).unwrap().trim(), "");
    // A generous window keeps everything.
    let out = tail(&[log.to_str().unwrap(), "--since", "3600"]);
    assert_eq!(String::from_utf8(out.stdout).unwrap().lines().count(), 4);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn tail_of_a_missing_log_exits_two() {
    let out = tail(&["/nonexistent/serve.events"]);
    assert_eq!(out.status.code(), Some(2));
}
