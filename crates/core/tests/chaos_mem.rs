//! Warm-state memory stability: a long-lived `vcheck serve` engine must
//! not grow without bound. 200 scan cycles over a chaos workload — with
//! the fault file flapping between pristine and corrupted every cycle, so
//! parse and unit caches keep invalidating and re-filling — must keep
//! `live_bytes` inside a fixed band around the post-warmup value. The
//! generational cache sweeps are what make this hold: entries the current
//! tree does not use are dropped each request.
//!
//! Lives in its own integration-test binary because it needs the counting
//! global allocator and quiet allocation conditions (a single #[test]).

use std::fs;

use valuecheck::serve::{ServeConfig, ServeEngine};
use vc_workload::chaos::{generate_chaos, ChaosStep};

#[global_allocator]
static ALLOC: vc_obs::CountingAlloc = vc_obs::CountingAlloc;

#[test]
fn two_hundred_warm_cycles_hold_live_bytes_steady() {
    let plan = generate_chaos(5);
    let dir = std::env::temp_dir().join(format!("vc-chaos-mem-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    for (path, content) in &plan.initial_tree {
        let full = dir.join(path);
        fs::create_dir_all(full.parent().unwrap()).unwrap();
        fs::write(full, content).unwrap();
    }
    // The flapping edit: the first corrupted variant of the fault file
    // from the plan, against its pristine content.
    let (fault_path, corrupted) = plan
        .segments
        .iter()
        .flat_map(|s| &s.steps)
        .find_map(|s| match s {
            ChaosStep::Edit { path, content } => Some((path.clone(), content.clone())),
            _ => None,
        })
        .expect("plan contains an edit");
    let pristine = plan
        .initial_tree
        .iter()
        .find(|(p, _)| *p == fault_path)
        .unwrap()
        .1
        .clone();

    let mut engine = ServeEngine::new(&dir, ServeConfig::default()).unwrap();

    const WARMUP: usize = 20;
    const CYCLES: usize = 200;
    // Fixed band: warm steady-state may wobble with hash-map growth and
    // registry strings, but a leak of even a few KB per cycle would walk
    // far past this over 180 post-warmup cycles.
    const BAND_BYTES: i64 = 8 << 20;

    let mut baseline = 0i64;
    let mut peak_drift = 0i64;
    for cycle in 0..CYCLES {
        let content = if cycle % 2 == 0 {
            &corrupted
        } else {
            &pristine
        };
        fs::write(dir.join(&fault_path), content).unwrap();
        let resp = engine.scan(None).expect("warm scan succeeds");
        assert!(!resp.report.rows.is_empty() || resp.raw_candidates > 0);
        let live = vc_obs::alloc::global_stats().live_bytes;
        if cycle + 1 == WARMUP {
            baseline = live;
        } else if cycle + 1 > WARMUP {
            peak_drift = peak_drift.max((live - baseline).abs());
            assert!(
                (live - baseline).abs() <= BAND_BYTES,
                "cycle {cycle}: live_bytes {live} drifted {} from post-warmup baseline \
                 {baseline} (band {BAND_BYTES})",
                live - baseline,
            );
        }
    }
    assert!(baseline > 0, "counting allocator active");
    eprintln!("chaos_mem: baseline {baseline}B, peak drift {peak_drift}B over {CYCLES} cycles");
    let _ = fs::remove_dir_all(&dir);
}
