//! Exit-code contract of the `vcheck` binary under parse recovery.
//!
//! `vcheck` exits 0 with no findings, 1 with findings, 2 on usage/load
//! errors. The error-recovering front end must leave that contract intact:
//! a corrupted function is skipped (function-granular diagnostic, exit
//! decided by the surviving code), while a project where *nothing* parses
//! is still a hard load error.

use std::{
    fs,
    path::PathBuf,
    process::{Command, Output},
};

/// One planted cross-scope finding: the library retval is overwritten
/// before use, which the retval rule reports under any history.
const BUGGY_FN: &str = "int lib_a(void);\n\
                        int has_bug(void) {\n\
                        int got = lib_a();\n\
                        got = 2;\n\
                        return got;\n\
                        }\n";

/// A clean function that produces no findings.
const CLEAN_FN: &str = "int clean_fn(void) { return 1; }\n";

/// A function whose signature does not parse: recovery drops it alone.
const MANGLED_FN: &str = "vc_mangled_t broken_fn(void) {\n\
                          int x = 1;\n\
                          return x;\n\
                          }\n";

fn project(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vc-cli-exit-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    for (file, text) in files {
        fs::write(dir.join(file), text).unwrap();
    }
    dir
}

fn vcheck(dir: &PathBuf) -> Output {
    Command::new(env!("CARGO_BIN_EXE_vcheck"))
        .arg(dir)
        .output()
        .expect("vcheck runs")
}

#[test]
fn all_files_failing_to_parse_is_a_load_error() {
    let dir = project(
        "allbad",
        &[
            ("junk1.c", "@@ $$ ?? nothing lexes here ~~\n"),
            ("junk2.c", "%% ## also garbage $$\n"),
        ],
    );
    let out = vcheck(&dir);
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("every source file failed to parse"),
        "stderr: {stderr}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn surviving_findings_still_exit_one_and_name_the_skipped_function() {
    let dir = project("mixed", &[("a.c", &format!("{BUGGY_FN}{MANGLED_FN}"))]);
    let out = vcheck(&dir);
    assert_eq!(
        out.status.code(),
        Some(1),
        "the surviving planted bug decides the exit code; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("skipping function broken_fn"),
        "function-granular skip diagnostic; stderr: {stderr}"
    );
    assert!(
        !stderr.contains("skipping file"),
        "a one-function corruption must not read as a skipped file; stderr: {stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("has_bug"), "stdout: {stdout}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn surviving_clean_code_still_exits_zero() {
    let dir = project("cleanish", &[("a.c", &format!("{CLEAN_FN}{MANGLED_FN}"))]);
    let out = vcheck(&dir);
    assert_eq!(
        out.status.code(),
        Some(0),
        "no findings in the surviving code; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn empty_project_dir_exits_zero_with_empty_report() {
    // A directory with zero `.c` files is a clean project, not a usage
    // error: CI can point vcheck at a repo with no C sources.
    let dir = project("emptydir", &[]);
    fs::create_dir_all(dir.join("sub")).unwrap();
    let out = vcheck(&dir);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.lines().count(),
        1,
        "header-only CSV; stdout: {stdout}"
    );
    assert!(stdout.starts_with("rank,file,line"), "stdout: {stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("panicked"),
        "no panic on an empty tree; stderr: {stderr}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn expired_deadline_exits_three_with_partial_low_confidence_report() {
    let dir = project("deadline", &[("a.c", BUGGY_FN)]);
    // A zero deadline expires before the first function is analyzed.
    let out = Command::new(env!("CARGO_BIN_EXE_vcheck"))
        .arg(&dir)
        .args(["--deadline-ms", "0"])
        .output()
        .expect("vcheck runs");
    assert_eq!(
        out.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("deadline"), "stderr: {stderr}");
    // A generous deadline behaves exactly like a plain scan.
    let out = Command::new(env!("CARGO_BIN_EXE_vcheck"))
        .arg(&dir)
        .args(["--deadline-ms", "60000"])
        .output()
        .expect("vcheck runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let deadlined_stdout = out.stdout.clone();
    let plain = vcheck(&dir);
    assert_eq!(
        deadlined_stdout, plain.stdout,
        "an unexpired deadline must not change the report bytes"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn whole_file_loss_uses_the_file_level_diagnostic() {
    let dir = project(
        "onegood",
        &[("good.c", BUGGY_FN), ("junk.c", "@@ $$ ?? garbage ~~\n")],
    );
    let out = vcheck(&dir);
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("skipping file") && stderr.contains("junk.c"),
        "stderr: {stderr}"
    );
    let _ = fs::remove_dir_all(&dir);
}
