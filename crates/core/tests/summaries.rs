//! Contract of the per-function summary layer (PR 9): dead-store facts
//! are computed exactly once per function on a cold scan, reused — not
//! rebuilt — on a warm `serve` re-scan of an unchanged tree, and the
//! shared-summary plumbing changes no observable output: reports stay
//! byte-identical across the sequential pipeline, the sentinel executor,
//! and serve warm/cold, and the cursor prune makes the same decisions from
//! the summary's delta map as the original per-candidate instruction
//! rescan.

use std::fs;
use std::path::{Path, PathBuf};

use valuecheck::{
    authorship::AuthorshipCtx,
    detect::{detect_program_hardened, DetectConfig},
    harden::HardenConfig,
    pipeline::{run_sentinel, run_with_obs, Options},
    prune::{prune, PeerStats, PruneConfig},
    sentinel::SentinelConfig,
    serve::{ServeConfig, ServeEngine},
};
use vc_dataflow::summary::{SigInterner, Summaries};
use vc_ir::Program;
use vc_obs::ObsSession;
use vc_workload::{generate, AppProfile};

fn build_app(seed: u64) -> (Program, vc_vcs::Repository) {
    let mut profile = AppProfile::nfs_ganesha().scaled(0.05);
    profile.seed = seed.wrapping_mul(9001) ^ 0x51AB;
    profile.name = format!("summaries{seed}");
    let app = generate(&profile);
    let (prog, errors) = Program::build_lenient(&app.source_refs(), &app.defines);
    assert!(errors.is_empty(), "clean app must build cleanly");
    (prog, app.repo)
}

#[test]
fn cold_scan_builds_each_summary_exactly_once() {
    let (prog, repo) = build_app(1);
    let obs = ObsSession::new();
    let analysis = run_with_obs(&prog, &repo, &Options::paper(), obs.clone());
    assert!(
        !analysis.report.rows.is_empty(),
        "the generated app must produce findings for the counters to mean anything"
    );
    let snap = obs.registry.snapshot();

    // Detection builds one summary per function; the prune stage consumes
    // those shared facts instead of re-solving liveness, so `summary.built`
    // lands exactly on the function count.
    assert_eq!(
        snap.counter("summary.built"),
        prog.funcs.len() as u64,
        "dead-store facts must be computed exactly once per function"
    );
    // Every function is accounted for downstream: its summary is either
    // reused by the peer-statistics pass or eliminated as unable to answer
    // any peer question the candidate set asks.
    assert_eq!(
        snap.counter("summary.reused") + snap.counter("summary.eliminated"),
        prog.funcs.len() as u64,
        "peer stage must reuse or eliminate every summary, never rebuild"
    );
    assert!(
        snap.counter("summary.eliminated") > 0,
        "a realistic app has functions no peer question can reach"
    );
}

const BUGGY: &str = "int lib_a(void);\n\
                     int has_bug(void) {\n\
                     int got = lib_a();\n\
                     got = 2;\n\
                     return got;\n\
                     }\n";
const CLEAN: &str = "int clean_fn(void) { return 1; }\n";

fn tree(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vc-summaries-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    for (f, text) in files {
        fs::write(dir.join(f), text).unwrap();
    }
    dir
}

fn counters(eng: &ServeEngine) -> (u64, u64) {
    let reg = &eng.obs().registry;
    (reg.counter("summary.built"), reg.counter("summary.reused"))
}

#[test]
fn warm_serve_rescan_reuses_summaries_without_rebuilding() {
    let dir = tree("warm", &[("a.c", BUGGY), ("b.c", CLEAN)]);
    let mut eng = ServeEngine::new(&dir, ServeConfig::default()).unwrap();

    let first = eng.scan(None).unwrap();
    assert!(first.rebuilt);
    let (built_cold, _) = counters(&eng);
    assert!(built_cold >= 2, "cold scan builds every function's summary");

    // Unchanged tree: the warm request serves every function from the unit
    // cache — zero new summary builds, only reuses.
    let second = eng.scan(None).unwrap();
    assert!(!second.rebuilt);
    assert_eq!(second.unit_misses, 0, "unchanged tree misses nothing");
    let (built_warm, reused_warm) = counters(&eng);
    assert_eq!(
        built_warm, built_cold,
        "a warm re-scan of an unchanged tree must not rebuild any summary"
    );
    assert!(
        reused_warm > 0,
        "warm hits must be counted as summary reuses"
    );
    let _ = fs::remove_dir_all(&dir);
}

fn cold_canonical(dir: &Path) -> Vec<u8> {
    let project = valuecheck::project::load_dir_or_empty(dir).unwrap();
    let (prog, _errors, _) = Program::build_recovering(&project.source_refs(), &[]);
    let analysis = run_with_obs(&prog, &project.repo, &Options::paper(), ObsSession::new());
    analysis.report.canonical_bytes()
}

#[test]
fn reports_stay_byte_identical_across_executors_and_serve_warmth() {
    let dir = tree("bytes", &[("a.c", BUGGY), ("b.c", CLEAN)]);
    let oracle = cold_canonical(&dir);

    // Sequential vs sentinel (--jobs 4) on the same tree.
    let project = valuecheck::project::load_dir_or_empty(&dir).unwrap();
    let (prog, _errors, _) = Program::build_recovering(&project.source_refs(), &[]);
    let sconf = SentinelConfig {
        jobs: 4,
        ..SentinelConfig::default()
    };
    let par = run_sentinel(
        &prog,
        &project.repo,
        &Options::paper(),
        &sconf,
        ObsSession::new(),
    );
    assert_eq!(par.report.canonical_bytes(), oracle, "--jobs 4 vs cold");

    // Serve cold, then warm: both must match the batch oracle.
    let mut eng = ServeEngine::new(&dir, ServeConfig::default()).unwrap();
    let cold = eng.scan(None).unwrap();
    assert_eq!(cold.report.canonical_bytes(), oracle, "serve cold vs cold");
    let warm = eng.scan(None).unwrap();
    assert_eq!(warm.report.canonical_bytes(), oracle, "serve warm vs cold");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cursor_prune_decisions_match_the_original_inline_rescan() {
    // The summary's per-key self-offset delta map replaced a per-candidate
    // instruction rescan in the cursor pruner. An empty summary store
    // forces `prune` down its defensive inline-rescan fallback — the
    // original algorithm — so the two paths must agree candidate by
    // candidate on generated truth workloads.
    for seed in 0..4u64 {
        let (prog, repo) = build_app(seed.wrapping_add(10));
        let out = detect_program_hardened(&prog, DetectConfig::default(), HardenConfig::default());
        let items: Vec<_> = AuthorshipCtx::new(&prog, &repo)
            .attribute_all(&out.candidates)
            .into_iter()
            .filter(|a| a.cross_scope)
            .collect();
        assert!(!items.is_empty(), "seed {seed}: no cross-scope candidates");

        let mut summaries = out.summaries;
        let peers = PeerStats::compute_with(&prog, SigInterner::new(&prog), &mut summaries, None);

        let with_summaries = prune(
            &prog,
            &PruneConfig::default(),
            &peers,
            &summaries,
            items.clone(),
        );
        let with_fallback = prune(
            &prog,
            &PruneConfig::default(),
            &peers,
            &Summaries::default(),
            items,
        );

        let digest = |o: &valuecheck::prune::PruneOutcome| {
            let kept: Vec<_> = o
                .kept
                .iter()
                .map(|a| (a.candidate.func_name.clone(), a.candidate.span))
                .collect();
            let pruned: Vec<_> = o
                .pruned
                .iter()
                .map(|(a, r)| (a.candidate.func_name.clone(), a.candidate.span, *r))
                .collect();
            (kept, pruned)
        };
        assert_eq!(
            digest(&with_summaries),
            digest(&with_fallback),
            "seed {seed}: summary-based cursor pruning changed a decision"
        );
    }
}
