//! Chaos-proven recovery for the `vcheck serve` daemon.
//!
//! Executes seeded [`vc_workload::chaos`] plans against the real binary:
//! request streams interleaved with on-disk corruption, malformed lines,
//! oversized bursts against a wedged worker, injected panics, and
//! mid-stream kill+restart. The contract held throughout:
//!
//! - the daemon process never exits except on `shutdown`/EOF (status 0);
//! - every clean scan/update reply is **byte-identical** to a cold batch
//!   scan of the tree at that moment (the in-process oracle below);
//! - per-lifetime counters balance: requests, bad lines, sheds,
//!   quarantines, and the analysis funnel
//!   (`cross_scope == pruned + reported`).

use std::{
    fs,
    io::{BufRead, BufReader, Write},
    path::{Path, PathBuf},
    process::{Child, ChildStdin, ChildStdout, Command, Stdio},
};

use valuecheck::{
    harden::{FailStage, FailureRecord},
    pipeline::{run_with_obs, Options},
    project::load_dir_or_empty,
};
use vc_ir::Program;
use vc_obs::{Json, ObsSession};
use vc_workload::chaos::{generate_chaos, ChaosStep};

/// A cold batch scan of `dir` through the standard pipeline: the byte
/// oracle every clean warm reply must match. Deliberately built from the
/// batch entry points, not `valuecheck::serve`, so warm == cold is a
/// meaningful invariant.
fn cold_canonical(dir: &Path) -> Vec<u8> {
    let project = load_dir_or_empty(dir).expect("oracle loads the tree");
    let (prog, errors, _) = Program::build_recovering(&project.source_refs(), &[]);
    let mut analysis = run_with_obs(&prog, &project.repo, &Options::paper(), ObsSession::new());
    let front: Vec<FailureRecord> = errors
        .iter()
        .map(|e| FailureRecord {
            stage: FailStage::Parse,
            file: e.file().to_string(),
            function: e.function().map(str::to_string),
            message: e.to_string(),
        })
        .collect();
    analysis.report.failures.splice(0..0, front);
    analysis.report.canonical_bytes()
}

/// The warm reply's report bytes: `csv` + pretty-printed `report`, the two
/// halves of `Report::canonical_bytes`, reconstructed from the wire.
fn reply_canonical(reply: &Json) -> Vec<u8> {
    let mut out = reply
        .get("csv")
        .and_then(Json::as_str)
        .expect("scan reply has csv")
        .as_bytes()
        .to_vec();
    out.extend_from_slice(
        reply
            .get("report")
            .expect("scan reply has report")
            .to_string_pretty()
            .as_bytes(),
    );
    out
}

struct Daemon {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
    seq: u64,
    /// Every `trace_id` observed on a reply, in arrival order. Shed
    /// replies carry none (they never reach the engine that assigns them).
    trace_ids: Vec<i64>,
}

impl Daemon {
    fn spawn(dir: &Path, queue_depth: usize, panic_seqs: &[u64], failpoints: &str) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_vcheck"));
        cmd.arg("serve")
            .arg(dir)
            .args(["--queue-depth", &queue_depth.to_string()])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if !panic_seqs.is_empty() {
            let spec: Vec<String> = panic_seqs.iter().map(u64::to_string).collect();
            cmd.env("VCHECK_SERVE_PANIC_SEQS", spec.join(","));
        }
        if !failpoints.is_empty() {
            cmd.env("VCHECK_SERVE_FAILPOINTS", failpoints);
        }
        let mut child = cmd.spawn().expect("vcheck serve spawns");
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        Daemon {
            child,
            stdin,
            stdout,
            seq: 0,
            trace_ids: Vec::new(),
        }
    }

    /// Sends one line (assigning it the next seq) without reading a reply.
    fn send(&mut self, line: &str) -> u64 {
        self.seq += 1;
        writeln!(self.stdin, "{line}").expect("daemon accepts input");
        self.stdin.flush().unwrap();
        self.seq
    }

    /// Reads one reply line. Panics (failing the test) if the daemon died
    /// instead — the central "zero daemon exits" assertion.
    fn read_reply(&mut self) -> Json {
        let mut line = String::new();
        let n = self
            .stdout
            .read_line(&mut line)
            .expect("daemon stdout readable");
        assert!(
            n > 0,
            "daemon closed stdout mid-conversation (crashed?) at seq {}",
            self.seq
        );
        let reply = vc_obs::json::parse(line.trim_end()).expect("daemon speaks JSON");
        if let Some(id) = reply.get("trace_id").and_then(Json::as_i64) {
            self.trace_ids.push(id);
        }
        reply
    }

    fn request(&mut self, line: &str) -> Json {
        self.send(line);
        self.read_reply()
    }

    fn status(&mut self) -> Json {
        self.request("{\"op\":\"status\"}")
    }

    fn counter(status: &Json, name: &str) -> i64 {
        status
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_i64)
            .unwrap_or_else(|| panic!("status has counter {name}"))
    }

    fn shutdown(mut self) {
        let reply = self.request("{\"op\":\"shutdown\"}");
        assert_eq!(reply.get("op").and_then(Json::as_str), Some("shutdown"));
        let code = self.child.wait().expect("daemon reaped");
        assert_eq!(code.code(), Some(0), "graceful shutdown exits 0");
    }

    fn kill(mut self) {
        // Mid-stream kill: a request is in flight and never answered.
        let _ = self.send("{\"op\":\"scan\"}");
        self.child.kill().expect("kill delivered");
        let _ = self.child.wait();
    }
}

fn write_tree(name: &str, tree: &[(String, String)]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vc-chaos-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    for (path, content) in tree {
        let full = dir.join(path);
        fs::create_dir_all(full.parent().unwrap()).unwrap();
        fs::write(full, content).unwrap();
    }
    dir
}

fn run_plan(seed: u64) {
    let plan = generate_chaos(seed);
    let dir = write_tree(&format!("seed{seed}"), &plan.initial_tree);

    for (seg_idx, seg) in plan.segments.iter().enumerate() {
        let mut daemon = Daemon::spawn(&dir, plan.queue_depth, &seg.panic_seqs, "");
        let mut expected_bad = 0i64;
        let mut expected_quarantines = 0i64;
        let mut observed_sheds = 0i64;

        for step in &seg.steps {
            match step {
                ChaosStep::Scan | ChaosStep::Update { .. } => {
                    let line = match step {
                        ChaosStep::Scan => "{\"op\":\"scan\"}".to_string(),
                        ChaosStep::Update { files } => {
                            let names: Vec<String> =
                                files.iter().map(|f| format!("\"{f}\"")).collect();
                            format!("{{\"op\":\"update\",\"files\":[{}]}}", names.join(","))
                        }
                        _ => unreachable!(),
                    };
                    let seq = daemon.send(&line);
                    let reply = daemon.read_reply();
                    assert_eq!(reply.get("seq").and_then(Json::as_i64), Some(seq as i64));
                    if seg.panic_seqs.contains(&seq) {
                        // The armed panic: an error reply, a quarantine,
                        // and a daemon that keeps serving.
                        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
                        assert!(
                            reply
                                .get("error")
                                .and_then(Json::as_str)
                                .unwrap()
                                .contains("quarantined"),
                            "seed {seed} seg {seg_idx} seq {seq}: {reply:?}"
                        );
                        expected_quarantines += 1;
                    } else {
                        assert_eq!(
                            reply.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "seed {seed} seg {seg_idx} seq {seq}: {reply:?}"
                        );
                        assert_eq!(
                            reply_canonical(&reply),
                            cold_canonical(&dir),
                            "seed {seed} seg {seg_idx} seq {seq}: warm reply diverged from cold scan"
                        );
                    }
                }
                ChaosStep::Edit { path, content } => {
                    fs::write(dir.join(path), content).unwrap();
                }
                ChaosStep::BadLine { line } => {
                    let reply = daemon.request(line);
                    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
                    assert!(reply.get("shed").is_none(), "bad line is not a shed");
                    expected_bad += 1;
                }
                ChaosStep::Burst { wedge_ms, count } => {
                    // Wedge the worker, then overfill the queue.
                    daemon.send(&format!("{{\"op\":\"sleep\",\"ms\":{wedge_ms}}}"));
                    for _ in 0..*count {
                        daemon.send("{\"op\":\"scan\"}");
                    }
                    let mut sheds = 0i64;
                    for _ in 0..(1 + count) {
                        let reply = daemon.read_reply();
                        if reply.get("shed").and_then(Json::as_bool) == Some(true) {
                            sheds += 1;
                        } else if reply.get("op").and_then(Json::as_str) != Some("sleep") {
                            // A queued scan that survived the burst: it
                            // must still be a clean, byte-exact reply.
                            assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
                            assert_eq!(reply_canonical(&reply), cold_canonical(&dir));
                        }
                    }
                    assert!(
                        sheds >= 1,
                        "seed {seed} seg {seg_idx}: burst of {count} over depth {} shed nothing",
                        plan.queue_depth
                    );
                    observed_sheds += sheds;
                }
            }
        }

        // Counter balance for this daemon lifetime.
        let status = daemon.status();
        assert_eq!(
            Daemon::counter(&status, "serve.requests"),
            daemon.seq as i64,
            "every line sent was counted (seed {seed} seg {seg_idx})"
        );
        assert_eq!(Daemon::counter(&status, "serve.bad_requests"), expected_bad);
        assert_eq!(
            Daemon::counter(&status, "serve.state_rebuilds"),
            expected_quarantines,
            "exactly one quarantine per injected panic"
        );
        assert_eq!(Daemon::counter(&status, "serve.shed"), observed_sheds);
        let cross = Daemon::counter(&status, "funnel.cross_scope");
        let reported = Daemon::counter(&status, "funnel.reported");
        let pruned = status
            .get("funnel_pruned")
            .and_then(Json::as_i64)
            .expect("status reports pruned total");
        assert_eq!(
            cross,
            pruned + reported,
            "funnel balances (seed {seed} seg {seg_idx})"
        );
        // Request-funnel balance: every counted request resolved to exactly
        // one of the four outcomes by the time status answered (the status
        // request itself included — its reply counter is bumped before the
        // snapshot is read).
        assert_eq!(
            Daemon::counter(&status, "serve.requests"),
            Daemon::counter(&status, "serve.replies")
                + Daemon::counter(&status, "serve.shed")
                + Daemon::counter(&status, "serve.errors")
                + Daemon::counter(&status, "serve.quarantined"),
            "request funnel balances (seed {seed} seg {seg_idx})"
        );
        // Trace ids: every engine-processed request got exactly one, and
        // they arrived dense and strictly increasing from 1 — unique per
        // daemon lifetime, FIFO order preserved through chaos.
        let expected_ids: Vec<i64> = (1..=daemon.trace_ids.len() as i64).collect();
        assert_eq!(
            daemon.trace_ids, expected_ids,
            "trace ids dense + monotonic (seed {seed} seg {seg_idx})"
        );

        if seg.graceful {
            daemon.shutdown();
        } else {
            daemon.kill();
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn chaos_seed_1() {
    run_plan(1);
}

#[test]
fn chaos_seed_42() {
    run_plan(42);
}

#[test]
fn chaos_seed_99() {
    run_plan(99);
}

/// Env-armed failpoints poison individual functions on every request
/// without killing the daemon, and the failure records flow through the
/// protocol exactly as a cold scan with the same failpoint would report
/// them.
#[test]
fn armed_failpoints_degrade_but_never_kill() {
    let plan = generate_chaos(7);
    let dir = write_tree("failpoint", &plan.initial_tree);
    // Aim at the planted fault-file functions, present in every tree.
    let needle = "vc_corrupt_";
    let mut daemon = Daemon::spawn(&dir, plan.queue_depth, &[], &format!("detect:{needle}"));

    let oracle = {
        let _g = valuecheck::harden::arm_failpoint(FailStage::Detect, needle);
        cold_canonical(&dir)
    };
    for seq in 1..=3u64 {
        let reply = daemon.request("{\"op\":\"scan\"}");
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "seq {seq}"
        );
        assert_eq!(
            reply_canonical(&reply),
            oracle,
            "failpointed warm scan matches a failpointed cold scan (seq {seq})"
        );
        let failures = reply
            .get("report")
            .and_then(|r| r.get("failures"))
            .and_then(Json::as_arr)
            .unwrap();
        assert!(!failures.is_empty(), "poisoned units are reported");
    }
    let status = daemon.status();
    assert!(Daemon::counter(&status, "harden.poisoned.detect") > 0);
    daemon.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
