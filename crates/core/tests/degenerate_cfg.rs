//! Degenerate-CFG coverage: the shapes that historically hang or blow up
//! static analyzers must terminate — within budget — through all four
//! analysis entry points (liveness, reaching definitions, Andersen
//! points-to, alias uses) and the full hardened detector.

use valuecheck::{
    detect::{
        detect_program_hardened,
        DetectConfig, //
    },
    harden::{
        Budget,
        HardenConfig, //
    },
    pipeline::{
        run_with_obs,
        Options, //
    },
};
use vc_dataflow::{
    live_variables,
    reaching::{
        reaching_definitions,
        reaching_definitions_budgeted, //
    },
};
use vc_ir::{
    cfg::Cfg,
    Program, //
};
use vc_pointer::{
    AliasUses,
    Config as PtConfig,
    PointsTo, //
};

/// Runs every analysis entry point over every function of `src` and the
/// hardened detector over the whole program, all under `budget`.
fn grind(src: &str, budget: Budget) {
    let prog = Program::build(&[("degenerate.c", src)], &[]).unwrap();
    for f in &prog.funcs {
        let cfg = Cfg::new(f);
        let live = live_variables(f, &cfg);
        assert!(live.iterations > 0 || f.blocks.is_empty() || !live.exhausted);
        let reach = reaching_definitions(f, &cfg);
        assert!(!reach.entry.is_empty() || f.blocks.is_empty());
    }
    let pts = PointsTo::solve_with(
        &prog,
        PtConfig {
            budget,
            ..PtConfig::default()
        },
    );
    let _ = AliasUses::compute(&prog, &pts);
    let out = detect_program_hardened(
        &prog,
        DetectConfig::default(),
        HardenConfig {
            liveness_budget: budget,
            pointer_budget: budget,
            ..HardenConfig::default()
        },
    );
    assert!(out.failures.is_empty(), "no poisoning expected: {out:?}");
}

#[test]
fn empty_function_terminates() {
    grind("void empty(void) { }", Budget::UNLIMITED);
    grind("void empty(void) { }", Budget::steps(10_000));
}

#[test]
fn single_block_self_loop_terminates() {
    let src = "void spin(int n) { while (1) { n = n + 1; } }";
    grind(src, Budget::UNLIMITED);
    grind(src, Budget::steps(10_000));
}

#[test]
fn unreachable_blocks_terminate() {
    let src = "int dead_tail(int n) {\n\
               return n;\n\
               n = 5;\n\
               use(n);\n\
               }";
    grind(src, Budget::UNLIMITED);
    grind(src, Budget::steps(10_000));
}

#[test]
fn deeply_nested_loops_terminate() {
    let mut body = String::from("int x = 0;\n");
    for i in 0..32 {
        body.push_str(&format!("while (x < {i}) {{\n"));
    }
    body.push_str("x = x + 1;\n");
    for _ in 0..32 {
        body.push_str("}\n");
    }
    body.push_str("use(x);\n");
    let src = format!("void nested(void) {{\n{body}}}\n");
    grind(&src, Budget::UNLIMITED);
    grind(&src, Budget::millis(10_000));
}

fn straight_line_10k() -> String {
    // Each `if` contributes multiple CFG blocks: ~10k blocks total.
    let mut body = String::new();
    for _ in 0..5_000 {
        body.push_str("if (n) { n = n - 1; }\n");
    }
    format!("void stress(int n) {{\n{body}use(n);\n}}\n")
}

#[test]
fn ten_thousand_block_straight_line_terminates_within_budget() {
    // At this size the set-valued fixpoints (reaching definitions and the
    // detector's define-set liveness) turn quadratic — facts grow with the
    // block count — which is exactly the shape the budgets exist for. The
    // linear entry points must complete outright; the quadratic ones must
    // terminate promptly *by exhausting their budget* and degrade instead
    // of hanging.
    let src = straight_line_10k();
    let prog = Program::build(&[("stress.c", src.as_str())], &[]).unwrap();
    let f = &prog.funcs[0];
    let cfg = Cfg::new(f);
    assert!(cfg.len() >= 10_000, "blocks: {}", cfg.len());

    let live = live_variables(f, &cfg);
    assert!(!live.exhausted, "plain liveness is linear at 10k blocks");

    let reach = reaching_definitions_budgeted(f, &cfg, Budget::steps(1_000));
    assert!(
        reach.exhausted,
        "quadratic reaching must be cut by its budget, not run to death"
    );

    let pts = PointsTo::solve_with(
        &prog,
        PtConfig {
            budget: Budget::steps(2_000_000),
            ..PtConfig::default()
        },
    );
    assert!(!pts.exhausted(), "the points-to graph here is tiny");
    let _ = AliasUses::compute(&prog, &pts);

    let out = detect_program_hardened(
        &prog,
        DetectConfig::default(),
        HardenConfig {
            liveness_budget: Budget::steps(1_000),
            pointer_budget: Budget::steps(2_000_000),
            ..HardenConfig::default()
        },
    );
    assert!(out.failures.is_empty(), "degradation is not failure");
    assert_eq!(
        out.liveness_degraded, 1,
        "the stress function exhausts the define-set budget and degrades"
    );
}

#[test]
fn budget_exhaustion_on_stress_degrades_but_still_reports() {
    // The stress function exhausts a tight liveness budget; the small buggy
    // function next to it still finishes and must still be reported. The
    // empty repo means authorship is unknown — kept cross-scope by the
    // conservative default.
    let src = format!(
        "int lib_fetch(void);\n\
         void buggy(void) {{\n\
         int got = lib_fetch();\n\
         got = 2;\n\
         use(got);\n\
         }}\n{}",
        straight_line_10k()
    );
    let prog = Program::build(&[("stress.c", src.as_str())], &[]).unwrap();
    let repo = vc_vcs::Repository::new();
    let opts = Options {
        harden: HardenConfig {
            liveness_budget: Budget::steps(2_000),
            ..HardenConfig::default()
        },
        ..Options::paper()
    };
    let obs = vc_obs::ObsSession::new();
    let analysis = run_with_obs(&prog, &repo, &opts, obs.clone());
    assert!(
        obs.registry.counter("harden.degraded.liveness") >= 1,
        "the stress function must exhaust its liveness budget"
    );
    assert!(
        analysis
            .report
            .rows
            .iter()
            .any(|r| r.function == "buggy" && r.variable == "got"),
        "degraded run still reports the small function's finding: {:?}",
        analysis.report.rows
    );
    assert!(analysis.report.failures.is_empty());
}
