//! End-to-end observability test: runs the full pipeline on the paper's
//! Figure 1a / Figure 8 programs with a two-author history and checks that
//! the recorded metrics tell a consistent story — the candidate funnel
//! adds up, the analysis-layer counters are live, and the exported Chrome
//! trace parses and nests correctly.

use valuecheck::pipeline::{
    run_with_obs,
    Options, //
};
use vc_ir::Program;
use vc_obs::{
    Json,
    ObsSession, //
};
use vc_vcs::{
    FileWrite,
    Repository, //
};

/// The Figure 1a + Figure 8 programs with a two-author history (author 2
/// rewrites the overwriting lines, making both bugs cross-scope). The
/// trailing `dispatch` function stores the result of an *indirect* call
/// into a dead local, so the demand pointer oracle must solve its
/// component — keeping the `pointer.*` counters and the `pointer.solve`
/// span live now that functions without indirect calls never touch the
/// pointer stage.
fn two_author_setup() -> (Program, Repository) {
    let src = "int next_attr(int *bm);\n\
               int get_permset(void);\n\
               int calc_mask(void);\n\
               int conv(int *bm) {\n\
               int attr = next_attr(bm);\n\
               for (attr = next_attr(bm); attr != -1; attr = next_attr(bm)) { use(attr); }\n\
               return 0;\n\
               }\n\
               void acl(void) {\n\
               int ret = get_permset();\n\
               ret = calc_mask();\n\
               if (ret) { handle(); }\n\
               }\n\
               int ha(void) { return 1; }\n\
               void dispatch(void) {\n\
               int fp = ha;\n\
               int r = fp();\n\
               r = 7;\n\
               use(r);\n\
               }\n";
    let prog = Program::build(&[("nfs.c", src)], &[]).unwrap();
    let mut repo = Repository::new();
    let author1 = repo.add_author("author1");
    let author2 = repo.add_author("author2");
    repo.commit(
        author1,
        1_000,
        "original implementation",
        vec![FileWrite {
            path: "nfs.c".into(),
            content: src.to_string(),
        }],
    );
    let mut lines: Vec<String> = src.lines().map(str::to_string).collect();
    lines[5] = format!("{} ", lines[5]);
    lines[10] = format!("{} ", lines[10]);
    repo.commit(
        author2,
        2_000,
        "rework loop and mask computation",
        vec![FileWrite {
            path: "nfs.c".into(),
            content: lines.join("\n") + "\n",
        }],
    );
    (prog, repo)
}

#[test]
fn funnel_counters_are_consistent_with_the_analysis() {
    let (prog, repo) = two_author_setup();
    let obs = ObsSession::new();
    let analysis = run_with_obs(&prog, &repo, &Options::paper(), obs.clone());
    let snap = obs.registry.snapshot();

    let raw = snap.counter("funnel.raw");
    let cross = snap.counter("funnel.cross_scope");
    let reported = snap.counter("funnel.reported");
    let pruned: u64 = valuecheck::prune::PruneReason::ALL
        .iter()
        .map(|r| snap.counter(&format!("funnel.pruned.{}", r.label())))
        .sum();

    // The funnel narrows and balances: everything cross-scope is either
    // pruned or reported.
    assert!(raw >= cross, "raw {raw} < cross {cross}");
    assert!(cross >= reported, "cross {cross} < reported {reported}");
    assert_eq!(cross, pruned + reported, "funnel leak");

    // And it matches the analysis result itself.
    assert_eq!(raw, analysis.raw_candidates as u64);
    assert_eq!(cross, analysis.cross_scope_candidates as u64);
    assert_eq!(reported, analysis.detected() as u64);
    assert!(reported >= 2, "Fig. 1a + Fig. 8 report attr and ret");
}

#[test]
fn analysis_layers_record_nonzero_counters() {
    let (prog, repo) = two_author_setup();
    let obs = ObsSession::new();
    let _ = run_with_obs(&prog, &repo, &Options::paper(), obs.clone());
    let snap = obs.registry.snapshot();

    assert!(snap.counter("dataflow.solves") > 0);
    assert!(snap.counter("dataflow.fixpoint_iterations") > 0);
    assert!(snap.counter("dataflow.worklist_pushes") > 0);
    assert!(snap.counter("pointer.solves") > 0);
    assert!(snap.counter("pointer.nodes") > 0);
    assert!(snap.counter("detect.functions") >= 2, "conv and acl");

    // The metrics snapshot exports as JSON that our own parser accepts.
    let text = snap.to_json().to_string_pretty();
    let parsed = vc_obs::json::parse(&text).expect("metrics JSON parses");
    assert!(parsed.get("counters").is_some());
    assert!(parsed.get("histograms").is_some());
}

#[test]
fn chrome_trace_parses_and_spans_nest() {
    let (prog, repo) = two_author_setup();
    let obs = ObsSession::new();
    let _ = run_with_obs(&prog, &repo, &Options::paper(), obs.clone());

    // The exported trace is valid JSON with the Chrome trace_event shape.
    let text = obs.tracer.to_chrome_json().to_string_pretty();
    let parsed = vc_obs::json::parse(&text).expect("trace JSON parses");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for ev in events {
        assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
        assert!(ev.get("ts").and_then(Json::as_i64).is_some());
        assert!(ev.get("dur").and_then(Json::as_i64).is_some());
    }

    // The pipeline.run span contains every stage span.
    let records = obs.tracer.records();
    let root = records
        .iter()
        .find(|r| r.name == "pipeline.run")
        .expect("root span");
    for stage in [
        "stage.detect",
        "stage.authorship",
        "stage.prune",
        "stage.rank",
    ] {
        let s = records
            .iter()
            .find(|r| r.name == stage)
            .unwrap_or_else(|| panic!("missing span {stage}"));
        assert!(root.contains(s), "{stage} escapes pipeline.run");
        assert!(s.depth > root.depth, "{stage} not nested under root");
    }

    // Pointer solving happens inside detection.
    let detect = records.iter().find(|r| r.name == "stage.detect").unwrap();
    let psolve = records
        .iter()
        .find(|r| r.name == "pointer.solve")
        .expect("pointer.solve span");
    assert!(detect.contains(psolve), "pointer.solve escapes detection");

    // Stage spans never overlap each other (they are sequential).
    let stages: Vec<_> = records
        .iter()
        .filter(|r| r.name.starts_with("stage."))
        .collect();
    for (i, a) in stages.iter().enumerate() {
        for b in stages.iter().skip(i + 1) {
            let a_end = a.start_us + a.dur_us;
            let b_end = b.start_us + b.dur_us;
            assert!(
                a_end <= b.start_us || b_end <= a.start_us,
                "{} and {} overlap",
                a.name,
                b.name
            );
        }
    }
}
