//! Property tests for the frontend: lexer totality, pretty-print round
//! trips, and lowering/validation of arbitrary generated programs.
//!
//! Each property runs as a deterministic loop over cases drawn from a
//! seeded [`SplitMix64`]; a failing case prints its seed so it can be
//! replayed exactly.

use vc_ir::{
    lexer::lex, parser::parse, pretty::module_to_source, program::Program, span::FileId,
    testing::source_from_seed, validate::validate_program,
};
use vc_obs::SplitMix64;

/// Arbitrary text, including non-ASCII, control bytes and quotes.
fn arbitrary_text(rng: &mut SplitMix64, max_len: usize) -> String {
    const POOL: &[char] = &[
        'a', 'z', 'A', '0', '9', ' ', '\t', '\n', '+', '*', '/', '(', ')', '=', '{', '}', ';', '<',
        '>', '!', '&', '|', ',', '-', '"', '\'', '\\', '.', '_', '#', '@', '~', '^', '%', '\u{0}',
        '\u{7f}', 'é', 'λ', '🦀', '\u{2028}',
    ];
    let len = rng.range_inclusive_usize(0, max_len);
    (0..len).map(|_| *rng.choice(POOL)).collect()
}

/// Text over the token-ish alphabet the lexer accepts.
fn tokenish_text(rng: &mut SplitMix64, max_len: usize) -> String {
    const POOL: &[char] = &[
        'a', 'b', 'c', 'x', 'y', 'z', '0', '1', '9', ' ', '+', '*', '/', '(', ')', '=', '{', '}',
        ';', '<', '>', '!', '&', '|', ',', '-',
    ];
    let len = rng.range_inclusive_usize(0, max_len);
    (0..len).map(|_| *rng.choice(POOL)).collect()
}

/// The lexer never panics, whatever bytes arrive.
#[test]
fn lexer_is_total() {
    let mut rng = SplitMix64::new(0x1E7_5EED);
    for _ in 0..300 {
        let src = arbitrary_text(&mut rng, 200);
        let _ = lex(FileId(0), &src);
    }
}

/// The lexer either errors or produces a stream ending in Eof.
#[test]
fn lexer_streams_end_in_eof() {
    let mut rng = SplitMix64::new(0xE0F_5EED);
    for case in 0..300 {
        let src = tokenish_text(&mut rng, 120);
        if let Ok(toks) = lex(FileId(0), &src) {
            assert!(
                matches!(
                    toks.last().map(|t| &t.kind),
                    Some(vc_ir::token::TokenKind::Eof)
                ),
                "case {case}: no Eof for {src:?}"
            );
        }
    }
}

/// Generated programs parse, and pretty-printing is idempotent:
/// `pretty(parse(pretty(parse(src)))) == pretty(parse(src))`.
#[test]
fn pretty_print_round_trips() {
    let mut rng = SplitMix64::new(0xA11CE);
    for _ in 0..64 {
        let seed = rng.next_u64();
        let src = source_from_seed(seed);
        let m1 = parse(FileId(0), &src).expect("generated source parses");
        let p1 = module_to_source(&m1);
        let m2 = parse(FileId(0), &p1)
            .unwrap_or_else(|e| panic!("seed {seed}: re-parse failed: {e}\n{p1}"));
        let p2 = module_to_source(&m2);
        assert_eq!(p1, p2, "seed {seed}");
    }
}

/// Generated programs lower and validate.
#[test]
fn generated_programs_validate() {
    let mut rng = SplitMix64::new(0xB0B);
    for _ in 0..64 {
        let seed = rng.next_u64();
        let src = source_from_seed(seed);
        let prog = Program::build(&[("g.c", src.as_str())], &[])
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        validate_program(&prog).unwrap_or_else(|e| panic!("seed {seed}: invalid IR: {e}"));
    }
}

/// Lowering is insensitive to an enabled-but-unused configuration: a
/// program without preprocessor guards lowers identically under any
/// define set.
#[test]
fn defines_do_not_affect_guardless_programs() {
    let mut rng = SplitMix64::new(0xDEF5);
    for _ in 0..64 {
        let seed = rng.next_u64();
        let define: String = (0..rng.range_inclusive_usize(1, 8))
            .map(|_| *rng.choice(&['A', 'B', 'F', 'X', 'Y', 'Z', 'Q', 'W']))
            .collect();
        let src = source_from_seed(seed);
        let a = Program::build(&[("g.c", src.as_str())], &[]).expect("builds");
        let b = Program::build(&[("g.c", src.as_str())], &[define.clone()]).expect("builds");
        assert_eq!(
            a.inst_count(),
            b.inst_count(),
            "seed {seed} define {define}"
        );
        assert_eq!(a.funcs.len(), b.funcs.len(), "seed {seed} define {define}");
    }
}

/// Every instruction's span points into the source file (line within
/// bounds), so blame lookups cannot go out of range.
#[test]
fn spans_stay_in_file() {
    let mut rng = SplitMix64::new(0x5DA2);
    for _ in 0..64 {
        let seed = rng.next_u64();
        let src = source_from_seed(seed);
        let nlines = src.lines().count() as u32;
        let prog = Program::build(&[("g.c", src.as_str())], &[]).expect("builds");
        for f in &prog.funcs {
            for bb in &f.blocks {
                for inst in &bb.insts {
                    let span = inst.span();
                    if !span.is_synthetic() {
                        assert!(
                            span.line() >= 1 && span.line() <= nlines,
                            "seed {seed}: line {} of {nlines}",
                            span.line()
                        );
                    }
                }
            }
        }
    }
}
