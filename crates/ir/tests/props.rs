//! Property tests for the frontend: lexer totality, pretty-print round
//! trips, and lowering/validation of arbitrary generated programs.

use proptest::prelude::*;
use vc_ir::{
    lexer::lex,
    parser::parse,
    pretty::module_to_source,
    program::Program,
    span::FileId,
    testing::source_from_seed,
    validate::validate_program,
};

proptest! {
    /// The lexer never panics, whatever bytes arrive.
    #[test]
    fn lexer_is_total(src in ".{0,200}") {
        let _ = lex(FileId(0), &src);
    }

    /// The lexer either errors or produces a stream ending in Eof.
    #[test]
    fn lexer_streams_end_in_eof(src in "[a-z0-9 +*/()={};<>!&|,\\-]{0,120}") {
        if let Ok(toks) = lex(FileId(0), &src) {
            prop_assert!(matches!(
                toks.last().map(|t| &t.kind),
                Some(vc_ir::token::TokenKind::Eof)
            ));
        }
    }

    /// Generated programs parse, and pretty-printing is idempotent:
    /// `pretty(parse(pretty(parse(src)))) == pretty(parse(src))`.
    #[test]
    fn pretty_print_round_trips(seed in any::<u64>()) {
        let src = source_from_seed(seed);
        let m1 = parse(FileId(0), &src).expect("generated source parses");
        let p1 = module_to_source(&m1);
        let m2 = parse(FileId(0), &p1)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{p1}"));
        let p2 = module_to_source(&m2);
        prop_assert_eq!(p1, p2);
    }

    /// Generated programs lower and validate.
    #[test]
    fn generated_programs_validate(seed in any::<u64>()) {
        let src = source_from_seed(seed);
        let prog = Program::build(&[("g.c", src.as_str())], &[]).expect("builds");
        validate_program(&prog).expect("valid IR");
    }

    /// Lowering is insensitive to an enabled-but-unused configuration: a
    /// program without preprocessor guards lowers identically under any
    /// define set.
    #[test]
    fn defines_do_not_affect_guardless_programs(seed in any::<u64>(), define in "[A-Z]{1,8}") {
        let src = source_from_seed(seed);
        let a = Program::build(&[("g.c", src.as_str())], &[]).expect("builds");
        let b = Program::build(&[("g.c", src.as_str())], &[define]).expect("builds");
        prop_assert_eq!(a.inst_count(), b.inst_count());
        prop_assert_eq!(a.funcs.len(), b.funcs.len());
    }

    /// Every instruction's span points into the source file (line within
    /// bounds), so blame lookups cannot go out of range.
    #[test]
    fn spans_stay_in_file(seed in any::<u64>()) {
        let src = source_from_seed(seed);
        let nlines = src.lines().count() as u32;
        let prog = Program::build(&[("g.c", src.as_str())], &[]).expect("builds");
        for f in &prog.funcs {
            for bb in &f.blocks {
                for inst in &bb.insts {
                    let span = inst.span();
                    if !span.is_synthetic() {
                        prop_assert!(span.line() >= 1 && span.line() <= nlines,
                            "line {} of {nlines}", span.line());
                    }
                }
            }
        }
    }
}
