//! Lowering from the MiniC AST to the load/store IR.
//!
//! Lowering mimics `clang -O0 -fno-inline`: every named local gets a stack
//! slot, parameter values are spilled into slots at entry (so an overwritten
//! parameter is visible as a dead store, Fig. 1b), and an ignored call result
//! becomes a store into a synthetic slot (`[tmp] = printf(...)`, Table 1).
//!
//! Lowering is configuration-aware: statements whose preprocessor guards are
//! not satisfied by the active configuration are skipped, but the names they
//! mention are recorded in [`Function::guarded_mentions`] for the
//! configuration-dependency pruner.

use std::collections::{
    BTreeSet,
    HashMap, //
};

use crate::{
    ast::{
        BinOp,
        Block,
        Expr,
        ExprKind,
        FuncDef,
        Stmt,
        StmtKind,
        SwitchCase,
        UnOp, //
    },
    ir::{
        BasicBlock,
        BlockId,
        Callee,
        Function,
        Inst,
        IrUnOp,
        LocalId,
        LocalInfo,
        LocalKind,
        Operand,
        ParamInfo,
        Place,
        StoreInfo,
        TempId,
        TempOrigin,
        Terminator, //
    },
    span::Span,
    types::{
        Type,
        TypeTable, //
    },
};

/// An error produced during lowering.
#[derive(Clone, Debug)]
pub struct LowerError {
    /// Explanation of what went wrong.
    pub message: String,
    /// Where it went wrong.
    pub span: Span,
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lowering error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LowerError {}

/// Program-level context the lowerer consults: struct layouts, function
/// signatures, and global names.
pub struct LowerCtx<'a> {
    /// Struct layouts for field resolution.
    pub types: &'a TypeTable,
    /// Return types of all known functions (defined or declared), by name.
    pub func_ret: &'a HashMap<String, Type>,
    /// Names of global variables with their types.
    pub globals: &'a HashMap<String, Type>,
    /// Preprocessor symbols defined by the active configuration.
    pub defines: &'a [String],
}

/// Lowers one function definition to IR.
pub fn lower_function(ctx: &LowerCtx<'_>, def: &FuncDef) -> Result<Function, LowerError> {
    let mut lw = FuncLowerer {
        ctx,
        func_name: def.name.clone(),
        locals: Vec::new(),
        temp_origins: Vec::new(),
        blocks: vec![BlockUnder::new()],
        current: BlockId(0),
        scopes: vec![HashMap::new()],
        break_stack: Vec::new(),
        continue_stack: Vec::new(),
        return_spans: Vec::new(),
    };

    // Spill parameters into slots; these stores are the "implicit definition"
    // of Fig. 1b and are checked at function entry by the detector.
    let mut params = Vec::new();
    for (i, p) in def.params.iter().enumerate() {
        let slot = lw.add_local(LocalInfo {
            name: p.name.clone(),
            ty: p.ty.clone(),
            span: p.span,
            unused_attr: p.unused_attr,
            kind: LocalKind::Param(i),
        });
        lw.bind(p.name.clone(), slot);
        let t = lw.new_temp(TempOrigin::Param(i));
        lw.emit(Inst::Store {
            place: Place::Local(slot),
            value: Operand::Temp(t),
            info: StoreInfo::ParamInit { index: i },
            span: p.span,
        });
        params.push(ParamInfo {
            name: p.name.clone(),
            ty: p.ty.clone(),
            local: slot,
            unused_attr: p.unused_attr,
            span: p.span,
        });
    }

    lw.lower_block(&def.body)?;

    // Implicit return when control falls off the end.
    let end_span = Span::point(def.span.file, def.span.end.line, def.span.end.col);
    lw.terminate(Terminator::Ret {
        value: None,
        span: end_span,
    });

    let blocks = lw
        .blocks
        .into_iter()
        .map(|b| BasicBlock {
            insts: b.insts,
            term: b.term.unwrap_or(Terminator::Unreachable),
        })
        .collect();

    Ok(Function {
        name: def.name.clone(),
        ret_ty: def.ret.clone(),
        params,
        locals: lw.locals,
        blocks,
        entry: BlockId(0),
        temp_origins: lw.temp_origins,
        is_static: def.is_static,
        file: def.span.file,
        span: def.span,
        return_spans: lw.return_spans,
        guarded_mentions: collect_guarded_mentions(&def.body),
        recovered: def.body.poisoned_count() > 0,
    })
}

/// Collects names mentioned inside preprocessor-guarded statements.
fn collect_guarded_mentions(body: &Block) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    fn walk_block(b: &Block, out: &mut BTreeSet<String>) {
        for s in &b.stmts {
            walk_stmt(s, out);
        }
    }
    fn walk_stmt(s: &Stmt, out: &mut BTreeSet<String>) {
        if !s.guards.is_empty() {
            collect_stmt_names(s, out);
        }
        // Recurse to find guarded statements nested in unguarded ones.
        match &s.kind {
            StmtKind::If { then, els, .. } => {
                walk_block(then, out);
                if let Some(e) = els {
                    walk_block(e, out);
                }
            }
            StmtKind::While { body, .. } => walk_block(body, out),
            StmtKind::DoWhile { body, .. } => walk_block(body, out),
            StmtKind::Switch { cases, default, .. } => {
                for c in cases {
                    walk_block(&c.body, out);
                }
                if let Some(d) = default {
                    walk_block(d, out);
                }
            }
            StmtKind::For { body, init, .. } => {
                if let Some(i) = init {
                    walk_stmt(i, out);
                }
                walk_block(body, out);
            }
            StmtKind::Block(b) => walk_block(b, out),
            _ => {}
        }
    }
    fn collect_stmt_names(s: &Stmt, out: &mut BTreeSet<String>) {
        match &s.kind {
            StmtKind::Decl { init: Some(e), .. } => collect_expr_names(e, out),
            StmtKind::Expr(e) | StmtKind::Return(Some(e)) => collect_expr_names(e, out),
            StmtKind::If { cond, then, els } => {
                collect_expr_names(cond, out);
                for t in &then.stmts {
                    collect_stmt_names(t, out);
                }
                if let Some(e) = els {
                    for t in &e.stmts {
                        collect_stmt_names(t, out);
                    }
                }
            }
            StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
                collect_expr_names(cond, out);
                for t in &body.stmts {
                    collect_stmt_names(t, out);
                }
            }
            StmtKind::Switch {
                scrutinee,
                cases,
                default,
            } => {
                collect_expr_names(scrutinee, out);
                for c in cases {
                    for t in &c.body.stmts {
                        collect_stmt_names(t, out);
                    }
                }
                if let Some(d) = default {
                    for t in &d.stmts {
                        collect_stmt_names(t, out);
                    }
                }
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    collect_stmt_names(i, out);
                }
                if let Some(c) = cond {
                    collect_expr_names(c, out);
                }
                if let Some(st) = step {
                    collect_expr_names(st, out);
                }
                for t in &body.stmts {
                    collect_stmt_names(t, out);
                }
            }
            StmtKind::Block(b) => {
                for t in &b.stmts {
                    collect_stmt_names(t, out);
                }
            }
            _ => {}
        }
    }
    fn collect_expr_names(e: &Expr, out: &mut BTreeSet<String>) {
        match &e.kind {
            ExprKind::Var(n) => {
                out.insert(n.clone());
            }
            ExprKind::Unary { expr, .. }
            | ExprKind::Deref(expr)
            | ExprKind::AddrOf(expr)
            | ExprKind::Cast { expr, .. }
            | ExprKind::IncDec { target: expr, .. } => collect_expr_names(expr, out),
            ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
                collect_expr_names(lhs, out);
                collect_expr_names(rhs, out);
            }
            ExprKind::Call { args, .. } => {
                for a in args {
                    collect_expr_names(a, out);
                }
            }
            ExprKind::Member { base, .. } => collect_expr_names(base, out),
            ExprKind::Index { base, index } => {
                collect_expr_names(base, out);
                collect_expr_names(index, out);
            }
            ExprKind::Ternary { cond, then, els } => {
                collect_expr_names(cond, out);
                collect_expr_names(then, out);
                collect_expr_names(els, out);
            }
            _ => {}
        }
    }
    walk_block(body, &mut out);
    out
}

struct BlockUnder {
    insts: Vec<Inst>,
    term: Option<Terminator>,
}

impl BlockUnder {
    fn new() -> Self {
        Self {
            insts: Vec::new(),
            term: None,
        }
    }
}

struct FuncLowerer<'a, 'b> {
    ctx: &'a LowerCtx<'b>,
    func_name: String,
    locals: Vec<LocalInfo>,
    temp_origins: Vec<TempOrigin>,
    blocks: Vec<BlockUnder>,
    current: BlockId,
    scopes: Vec<HashMap<String, LocalId>>,
    /// Targets of `break`: innermost loop exit or switch exit.
    break_stack: Vec<BlockId>,
    /// Targets of `continue`: innermost loop header/step (switches are
    /// transparent to `continue`, as in C).
    continue_stack: Vec<BlockId>,
    return_spans: Vec<Span>,
}

impl<'a, 'b> FuncLowerer<'a, 'b> {
    fn err(&self, span: Span, message: impl Into<String>) -> LowerError {
        LowerError {
            message: format!("in `{}`: {}", self.func_name, message.into()),
            span,
        }
    }

    fn add_local(&mut self, info: LocalInfo) -> LocalId {
        let id = LocalId(self.locals.len() as u32);
        self.locals.push(info);
        id
    }

    fn bind(&mut self, name: String, slot: LocalId) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name, slot);
    }

    fn lookup(&self, name: &str) -> Option<LocalId> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn new_temp(&mut self, origin: TempOrigin) -> TempId {
        let id = TempId(self.temp_origins.len() as u32);
        self.temp_origins.push(origin);
        id
    }

    fn emit(&mut self, inst: Inst) {
        let b = &mut self.blocks[self.current.0 as usize];
        if b.term.is_none() {
            b.insts.push(inst);
        }
        // Instructions after a terminator (unreachable code) are dropped,
        // matching what a compiler's trivial DCE of unreachable blocks does.
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BlockUnder::new());
        id
    }

    fn switch_to(&mut self, b: BlockId) {
        self.current = b;
    }

    fn terminate(&mut self, term: Terminator) {
        let b = &mut self.blocks[self.current.0 as usize];
        if b.term.is_none() {
            b.term = Some(term);
        }
    }

    fn stmt_enabled(&self, s: &Stmt) -> bool {
        s.guards.iter().all(|g| g.enabled(self.ctx.defines))
    }

    // ----- Types ----------------------------------------------------------

    /// Best-effort static type of an expression; unknown shapes become `int`.
    fn expr_type(&self, e: &Expr) -> Type {
        match &e.kind {
            ExprKind::IntLit(_) => Type::Int,
            ExprKind::BoolLit(_) => Type::Bool,
            ExprKind::StrLit(_) => Type::Char.ptr_to(),
            ExprKind::Null => Type::Void.ptr_to(),
            ExprKind::Var(n) => {
                if let Some(l) = self.lookup(n) {
                    self.locals[l.0 as usize].ty.clone()
                } else if let Some(t) = self.ctx.globals.get(n) {
                    t.clone()
                } else if self.ctx.func_ret.contains_key(n) {
                    Type::Void.ptr_to()
                } else {
                    Type::Int
                }
            }
            ExprKind::Unary { expr, .. } => self.expr_type(expr),
            ExprKind::Deref(inner) => self
                .expr_type(inner)
                .pointee()
                .cloned()
                .unwrap_or(Type::Int),
            ExprKind::AddrOf(inner) => self.expr_type(inner).ptr_to(),
            ExprKind::IncDec { target, .. } => self.expr_type(target),
            ExprKind::Binary { op, lhs, rhs } => {
                if op.is_logical() {
                    Type::Bool
                } else {
                    let lt = self.expr_type(lhs);
                    if lt.is_pointer_like() {
                        lt
                    } else {
                        let rt = self.expr_type(rhs);
                        if rt.is_pointer_like() {
                            rt
                        } else {
                            lt
                        }
                    }
                }
            }
            ExprKind::Assign { lhs, .. } => self.expr_type(lhs),
            ExprKind::Call { callee, .. } => {
                self.ctx.func_ret.get(callee).cloned().unwrap_or(Type::Int)
            }
            ExprKind::Member { base, field, .. } => {
                let bt = self.expr_type(base);
                let sname = match &bt {
                    Type::Struct(n) => Some(n.clone()),
                    Type::Ptr(inner) => match inner.as_ref() {
                        Type::Struct(n) => Some(n.clone()),
                        _ => None,
                    },
                    _ => None,
                };
                sname
                    .and_then(|n| {
                        let layout = self.ctx.types.get(&n)?;
                        let idx = layout.field_index(field)?;
                        Some(layout.field_types[idx].clone())
                    })
                    .unwrap_or(Type::Int)
            }
            ExprKind::Index { base, .. } => {
                self.expr_type(base).pointee().cloned().unwrap_or(Type::Int)
            }
            ExprKind::Cast { ty, .. } => ty.clone(),
            ExprKind::Ternary { then, .. } => self.expr_type(then),
        }
    }

    /// Resolves `field` against the struct type of `base_ty`.
    fn field_index(&self, base_ty: &Type, field: &str, span: Span) -> Result<u32, LowerError> {
        let sname = match base_ty {
            Type::Struct(n) => n,
            Type::Ptr(inner) | Type::Array(inner, _) => match inner.as_ref() {
                Type::Struct(n) => n,
                other => {
                    return Err(self.err(span, format!("`{other}` has no field `{field}`")));
                }
            },
            other => return Err(self.err(span, format!("`{other}` has no field `{field}`"))),
        };
        let layout = self
            .ctx
            .types
            .get(sname)
            .ok_or_else(|| self.err(span, format!("unknown struct `{sname}`")))?;
        layout
            .field_index(field)
            .map(|i| i as u32)
            .ok_or_else(|| self.err(span, format!("struct `{sname}` has no field `{field}`")))
    }

    // ----- Blocks and statements -----------------------------------------

    fn lower_block(&mut self, b: &Block) -> Result<(), LowerError> {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.lower_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn lower_stmt(&mut self, s: &Stmt) -> Result<(), LowerError> {
        if !self.stmt_enabled(s) {
            return Ok(());
        }
        match &s.kind {
            StmtKind::Decl {
                name,
                ty,
                init,
                unused_attr,
            } => {
                let slot = self.add_local(LocalInfo {
                    name: name.clone(),
                    ty: ty.clone(),
                    span: s.span,
                    unused_attr: *unused_attr,
                    kind: LocalKind::Named,
                });
                self.bind(name.clone(), slot);
                if let Some(e) = init {
                    let (value, info) = self.lower_store_value(&Place::Local(slot), e)?;
                    self.emit(Inst::Store {
                        place: Place::Local(slot),
                        value,
                        info,
                        span: s.span,
                    });
                }
                Ok(())
            }
            StmtKind::Expr(e) => {
                self.lower_expr_stmt(e, s.span)?;
                Ok(())
            }
            StmtKind::If { cond, then, els } => self.lower_if(cond, then, els.as_ref(), s.span),
            StmtKind::While { cond, body } => self.lower_while(cond, body),
            StmtKind::DoWhile { body, cond } => self.lower_do_while(body, cond),
            StmtKind::Switch {
                scrutinee,
                cases,
                default,
            } => self.lower_switch(scrutinee, cases, default.as_ref()),
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => self.lower_for(init.as_deref(), cond.as_ref(), step.as_ref(), body),
            StmtKind::Return(value) => {
                let v = match value {
                    Some(e) => Some(self.lower_expr(e)?),
                    None => None,
                };
                self.return_spans.push(s.span);
                self.terminate(Terminator::Ret {
                    value: v,
                    span: s.span,
                });
                let dead = self.new_block();
                self.switch_to(dead);
                Ok(())
            }
            StmtKind::Break => {
                let target = *self
                    .break_stack
                    .last()
                    .ok_or_else(|| self.err(s.span, "break outside of loop or switch"))?;
                self.terminate(Terminator::Br(target));
                let dead = self.new_block();
                self.switch_to(dead);
                Ok(())
            }
            StmtKind::Continue => {
                let target = *self
                    .continue_stack
                    .last()
                    .ok_or_else(|| self.err(s.span, "continue outside of loop"))?;
                self.terminate(Terminator::Br(target));
                let dead = self.new_block();
                self.switch_to(dead);
                Ok(())
            }
            StmtKind::Block(b) => self.lower_block(b),
            // A poisoned recovery region lowers to nothing; the surviving
            // function is flagged `recovered` instead.
            StmtKind::Error => Ok(()),
        }
    }

    fn lower_if(
        &mut self,
        cond: &Expr,
        then: &Block,
        els: Option<&Block>,
        _span: Span,
    ) -> Result<(), LowerError> {
        let c = self.lower_expr(cond)?;
        let then_bb = self.new_block();
        let else_bb = self.new_block();
        let merge_bb = if els.is_some() {
            self.new_block()
        } else {
            else_bb
        };
        self.terminate(Terminator::CondBr {
            cond: c,
            then_bb,
            else_bb,
        });

        self.switch_to(then_bb);
        self.lower_block(then)?;
        self.terminate(Terminator::Br(merge_bb));

        if let Some(e) = els {
            self.switch_to(else_bb);
            self.lower_block(e)?;
            self.terminate(Terminator::Br(merge_bb));
        }

        self.switch_to(merge_bb);
        Ok(())
    }

    fn lower_while(&mut self, cond: &Expr, body: &Block) -> Result<(), LowerError> {
        let header = self.new_block();
        self.terminate(Terminator::Br(header));
        self.switch_to(header);
        let c = self.lower_expr(cond)?;
        let body_bb = self.new_block();
        let exit_bb = self.new_block();
        self.terminate(Terminator::CondBr {
            cond: c,
            then_bb: body_bb,
            else_bb: exit_bb,
        });

        self.break_stack.push(exit_bb);
        self.continue_stack.push(header);
        self.switch_to(body_bb);
        self.lower_block(body)?;
        self.terminate(Terminator::Br(header));
        self.break_stack.pop();
        self.continue_stack.pop();

        self.switch_to(exit_bb);
        Ok(())
    }

    fn lower_do_while(&mut self, body: &Block, cond: &Expr) -> Result<(), LowerError> {
        let body_bb = self.new_block();
        let cond_bb = self.new_block();
        let exit_bb = self.new_block();
        self.terminate(Terminator::Br(body_bb));

        self.break_stack.push(exit_bb);
        self.continue_stack.push(cond_bb);
        self.switch_to(body_bb);
        self.lower_block(body)?;
        self.terminate(Terminator::Br(cond_bb));
        self.break_stack.pop();
        self.continue_stack.pop();

        self.switch_to(cond_bb);
        let c = self.lower_expr(cond)?;
        self.terminate(Terminator::CondBr {
            cond: c,
            then_bb: body_bb,
            else_bb: exit_bb,
        });
        self.switch_to(exit_bb);
        Ok(())
    }

    fn lower_switch(
        &mut self,
        scrutinee: &Expr,
        cases: &[SwitchCase],
        default: Option<&Block>,
    ) -> Result<(), LowerError> {
        let scrut = self.lower_expr(scrutinee)?;
        let exit_bb = self.new_block();

        // Dispatch chain: one comparison block per label value.
        let mut arm_blocks = Vec::with_capacity(cases.len());
        for _ in cases {
            arm_blocks.push(self.new_block());
        }
        let default_bb = if default.is_some() {
            self.new_block()
        } else {
            exit_bb
        };

        for (ci, case) in cases.iter().enumerate() {
            for v in &case.values {
                let eq = self.new_temp(TempOrigin::Bin(BinOp::Eq));
                self.emit(Inst::Bin {
                    dst: eq,
                    op: BinOp::Eq,
                    lhs: scrut.clone(),
                    rhs: Operand::Const(*v),
                    span: scrutinee.span,
                });
                let next = self.new_block();
                self.terminate(Terminator::CondBr {
                    cond: Operand::Temp(eq),
                    then_bb: arm_blocks[ci],
                    else_bb: next,
                });
                self.switch_to(next);
            }
        }
        self.terminate(Terminator::Br(default_bb));

        // Arm bodies; `break` targets the switch exit.
        self.break_stack.push(exit_bb);
        for (ci, case) in cases.iter().enumerate() {
            self.switch_to(arm_blocks[ci]);
            self.lower_block(&case.body)?;
            self.terminate(Terminator::Br(exit_bb));
        }
        if let Some(d) = default {
            self.switch_to(default_bb);
            self.lower_block(d)?;
            self.terminate(Terminator::Br(exit_bb));
        }
        self.break_stack.pop();

        self.switch_to(exit_bb);
        Ok(())
    }

    fn lower_for(
        &mut self,
        init: Option<&Stmt>,
        cond: Option<&Expr>,
        step: Option<&Expr>,
        body: &Block,
    ) -> Result<(), LowerError> {
        self.scopes.push(HashMap::new());
        if let Some(i) = init {
            self.lower_stmt(i)?;
        }
        let header = self.new_block();
        self.terminate(Terminator::Br(header));
        self.switch_to(header);
        let body_bb = self.new_block();
        let exit_bb = self.new_block();
        match cond {
            Some(c) => {
                let v = self.lower_expr(c)?;
                self.terminate(Terminator::CondBr {
                    cond: v,
                    then_bb: body_bb,
                    else_bb: exit_bb,
                });
            }
            None => self.terminate(Terminator::Br(body_bb)),
        }

        let step_bb = self.new_block();
        self.break_stack.push(exit_bb);
        self.continue_stack.push(step_bb);
        self.switch_to(body_bb);
        self.lower_block(body)?;
        self.terminate(Terminator::Br(step_bb));
        self.break_stack.pop();
        self.continue_stack.pop();

        self.switch_to(step_bb);
        if let Some(st) = step {
            self.lower_expr_stmt(st, st.span)?;
        }
        self.terminate(Terminator::Br(header));

        self.switch_to(exit_bb);
        self.scopes.pop();
        Ok(())
    }

    // ----- Expressions ----------------------------------------------------

    /// Lowers an expression evaluated only for its effect. Ignored non-void
    /// call results become stores into a synthetic slot.
    fn lower_expr_stmt(&mut self, e: &Expr, span: Span) -> Result<(), LowerError> {
        match &e.kind {
            ExprKind::Call { callee, args } => {
                let (dst, callee_ir) = self.lower_call(callee, args, e.span)?;
                // Only a *declared* non-void callee produces the implicit
                // definition: for unknown (library) functions without a
                // prototype the return type is unknown, as in C.
                let declared_nonvoid = |n: &str| {
                    self.ctx
                        .func_ret
                        .get(n)
                        .map(|t| *t != Type::Void)
                        .unwrap_or(false)
                };
                if let (Some(t), Callee::Direct(name)) = (dst, &callee_ir) {
                    if !declared_nonvoid(name) {
                        return Ok(());
                    }
                    // The implicit definition `[tmp] = f(...)` of Table 1.
                    let slot = self.add_local(LocalInfo {
                        name: format!("$ret_{}_{}", name, span.start.line),
                        ty: self.ctx.func_ret.get(name).cloned().unwrap_or(Type::Int),
                        span,
                        unused_attr: false,
                        kind: LocalKind::Synthetic,
                    });
                    self.emit(Inst::Store {
                        place: Place::Local(slot),
                        value: Operand::Temp(t),
                        info: StoreInfo::RetVal {
                            callee: name.clone(),
                            synthetic_dst: true,
                        },
                        span,
                    });
                }
                Ok(())
            }
            ExprKind::Cast { ty, expr } if *ty == Type::Void => {
                // `(void)x` evaluates x; the load is a real use, which is
                // exactly why developers write it to silence warnings.
                self.lower_expr(expr)?;
                Ok(())
            }
            _ => {
                self.lower_expr(e)?;
                Ok(())
            }
        }
    }

    /// Lowers an expression to an operand (rvalue).
    fn lower_expr(&mut self, e: &Expr) -> Result<Operand, LowerError> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(Operand::Const(*v)),
            ExprKind::BoolLit(b) => Ok(Operand::Const(*b as i64)),
            ExprKind::StrLit(s) => Ok(Operand::Str(s.clone())),
            ExprKind::Null => Ok(Operand::Null),
            ExprKind::Var(name) => {
                if let Some(slot) = self.lookup(name) {
                    // Arrays decay to a pointer to their storage.
                    if matches!(self.locals[slot.0 as usize].ty, Type::Array(..)) {
                        let t = self.new_temp(TempOrigin::AddrOf(Place::Local(slot)));
                        self.emit(Inst::AddrOf {
                            dst: t,
                            place: Place::Local(slot),
                            span: e.span,
                        });
                        return Ok(Operand::Temp(t));
                    }
                    let t = self.new_temp(TempOrigin::Load(Place::Local(slot)));
                    self.emit(Inst::Load {
                        dst: t,
                        place: Place::Local(slot),
                        span: e.span,
                    });
                    Ok(Operand::Temp(t))
                } else if self.ctx.globals.contains_key(name) {
                    let t = self.new_temp(TempOrigin::Load(Place::Global(name.clone())));
                    self.emit(Inst::Load {
                        dst: t,
                        place: Place::Global(name.clone()),
                        span: e.span,
                    });
                    Ok(Operand::Temp(t))
                } else if self.ctx.func_ret.contains_key(name) {
                    Ok(Operand::FuncAddr(name.clone()))
                } else {
                    Err(self.err(e.span, format!("unknown identifier `{name}`")))
                }
            }
            ExprKind::Unary { op, expr } => {
                let v = self.lower_expr(expr)?;
                let ir_op = match op {
                    UnOp::Neg => IrUnOp::Neg,
                    UnOp::Not => IrUnOp::Not,
                    UnOp::BitNot => IrUnOp::BitNot,
                };
                let t = self.new_temp(TempOrigin::Un(ir_op));
                self.emit(Inst::Un {
                    dst: t,
                    op: ir_op,
                    operand: v,
                    span: e.span,
                });
                Ok(Operand::Temp(t))
            }
            ExprKind::Deref(_) | ExprKind::Member { .. } | ExprKind::Index { .. } => {
                let place = self.lower_place(e)?;
                let t = self.new_temp(TempOrigin::Load(place.clone()));
                self.emit(Inst::Load {
                    dst: t,
                    place,
                    span: e.span,
                });
                Ok(Operand::Temp(t))
            }
            ExprKind::AddrOf(inner) => {
                match &inner.kind {
                    // `&func` yields the function address.
                    ExprKind::Var(n)
                        if self.lookup(n).is_none() && self.ctx.func_ret.contains_key(n) =>
                    {
                        Ok(Operand::FuncAddr(n.clone()))
                    }
                    _ => {
                        let place = self.lower_place(inner)?;
                        let t = self.new_temp(TempOrigin::AddrOf(place.clone()));
                        self.emit(Inst::AddrOf {
                            dst: t,
                            place,
                            span: e.span,
                        });
                        Ok(Operand::Temp(t))
                    }
                }
            }
            ExprKind::IncDec { delta, pre, target } => {
                let place = self.lower_place(target)?;
                let old = self.new_temp(TempOrigin::Load(place.clone()));
                self.emit(Inst::Load {
                    dst: old,
                    place: place.clone(),
                    span: e.span,
                });
                let new = self.new_temp(TempOrigin::Bin(BinOp::Add));
                self.emit(Inst::Bin {
                    dst: new,
                    op: BinOp::Add,
                    lhs: Operand::Temp(old),
                    rhs: Operand::Const(*delta),
                    span: e.span,
                });
                self.emit(Inst::Store {
                    place,
                    value: Operand::Temp(new),
                    info: StoreInfo::SelfOffset { delta: *delta },
                    span: e.span,
                });
                Ok(Operand::Temp(if *pre { new } else { old }))
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let l = self.lower_expr(lhs)?;
                let r = self.lower_expr(rhs)?;
                let t = self.new_temp(TempOrigin::Bin(*op));
                self.emit(Inst::Bin {
                    dst: t,
                    op: *op,
                    lhs: l,
                    rhs: r,
                    span: e.span,
                });
                Ok(Operand::Temp(t))
            }
            ExprKind::Assign { op, lhs, rhs } => self.lower_assign(op, lhs, rhs, e.span),
            ExprKind::Call { callee, args } => {
                let (dst, _) = self.lower_call(callee, args, e.span)?;
                match dst {
                    Some(t) => Ok(Operand::Temp(t)),
                    None => Err(self.err(e.span, format!("void call `{callee}` used as a value"))),
                }
            }
            ExprKind::Cast { expr, .. } => self.lower_expr(expr),
            ExprKind::Ternary { cond, then, els } => {
                // Lowered strictly through a slot; precise short-circuiting is
                // irrelevant to def-use structure at our granularity.
                let slot = self.add_local(LocalInfo {
                    name: format!("$ternary_{}", e.span.start.line),
                    ty: self.expr_type(then),
                    span: e.span,
                    unused_attr: true, // Never a candidate.
                    kind: LocalKind::Synthetic,
                });
                let c = self.lower_expr(cond)?;
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let merge_bb = self.new_block();
                self.terminate(Terminator::CondBr {
                    cond: c,
                    then_bb,
                    else_bb,
                });
                self.switch_to(then_bb);
                let tv = self.lower_expr(then)?;
                self.emit(Inst::Store {
                    place: Place::Local(slot),
                    value: tv,
                    info: StoreInfo::Normal,
                    span: then.span,
                });
                self.terminate(Terminator::Br(merge_bb));
                self.switch_to(else_bb);
                let ev = self.lower_expr(els)?;
                self.emit(Inst::Store {
                    place: Place::Local(slot),
                    value: ev,
                    info: StoreInfo::Normal,
                    span: els.span,
                });
                self.terminate(Terminator::Br(merge_bb));
                self.switch_to(merge_bb);
                let t = self.new_temp(TempOrigin::Load(Place::Local(slot)));
                self.emit(Inst::Load {
                    dst: t,
                    place: Place::Local(slot),
                    span: e.span,
                });
                Ok(Operand::Temp(t))
            }
        }
    }

    /// Lowers an lvalue expression to a [`Place`].
    fn lower_place(&mut self, e: &Expr) -> Result<Place, LowerError> {
        match &e.kind {
            ExprKind::Var(name) => {
                if let Some(slot) = self.lookup(name) {
                    Ok(Place::Local(slot))
                } else if self.ctx.globals.contains_key(name) {
                    Ok(Place::Global(name.clone()))
                } else {
                    Err(self.err(e.span, format!("unknown identifier `{name}`")))
                }
            }
            ExprKind::Deref(inner) => {
                let v = self.lower_expr(inner)?;
                let t = self.operand_temp(v, inner.span)?;
                Ok(Place::Deref(t))
            }
            ExprKind::Member { base, field, arrow } => {
                if *arrow {
                    let v = self.lower_expr(base)?;
                    let t = self.operand_temp(v, base.span)?;
                    let idx = self.field_index(&self.expr_type(base), field, e.span)?;
                    Ok(Place::DerefField(t, idx))
                } else {
                    let base_place = self.lower_place(base)?;
                    let idx = self.field_index(&self.expr_type(base), field, e.span)?;
                    match base_place {
                        Place::Local(l) => Ok(Place::Field(l, idx)),
                        Place::Global(g) => Ok(Place::GlobalField(g, idx)),
                        // Nested aggregates degrade to the outer access: a
                        // one-level field sensitivity, like `v#n` naming.
                        other => Ok(other),
                    }
                }
            }
            ExprKind::Index { base, index } => {
                let _ = self.lower_expr(index)?;
                let addr = self.lower_expr(base)?;
                let t = self.operand_temp(addr, base.span)?;
                Ok(Place::Deref(t))
            }
            _ => Err(self.err(e.span, "expression is not an lvalue")),
        }
    }

    fn operand_temp(&mut self, v: Operand, span: Span) -> Result<TempId, LowerError> {
        match v {
            Operand::Temp(t) => Ok(t),
            other => Err(self.err(
                span,
                format!("expected a pointer-valued expression, found {other:?}"),
            )),
        }
    }

    /// Computes the stored operand and its [`StoreInfo`] for `place = rhs`.
    fn lower_store_value(
        &mut self,
        place: &Place,
        rhs: &Expr,
    ) -> Result<(Operand, StoreInfo), LowerError> {
        // Detect the cursor shape `p = p + c` / `p = p - c` at source level.
        if let ExprKind::Binary {
            op: op @ (BinOp::Add | BinOp::Sub),
            lhs,
            rhs: r,
        } = &rhs.kind
        {
            if let (ExprKind::Var(n), ExprKind::IntLit(c)) = (&lhs.kind, &r.kind) {
                if let Some(slot) = self.lookup(n) {
                    if *place == Place::Local(slot) {
                        let v = self.lower_expr(rhs)?;
                        let delta = if *op == BinOp::Add { *c } else { -*c };
                        return Ok((v, StoreInfo::SelfOffset { delta }));
                    }
                }
            }
        }
        let v = self.lower_expr(rhs)?;
        let info = match &v {
            Operand::Temp(t) => match &self.temp_origins[t.0 as usize] {
                TempOrigin::Call(name) => StoreInfo::RetVal {
                    callee: name.clone(),
                    synthetic_dst: false,
                },
                _ => StoreInfo::Normal,
            },
            _ => StoreInfo::Normal,
        };
        Ok((v, info))
    }

    fn lower_assign(
        &mut self,
        op: &Option<BinOp>,
        lhs: &Expr,
        rhs: &Expr,
        span: Span,
    ) -> Result<Operand, LowerError> {
        let place = self.lower_place(lhs)?;
        match op {
            None => {
                let (value, info) = self.lower_store_value(&place, rhs)?;
                self.emit(Inst::Store {
                    place,
                    value: value.clone(),
                    info,
                    span,
                });
                Ok(value)
            }
            Some(bin) => {
                let old = self.new_temp(TempOrigin::Load(place.clone()));
                self.emit(Inst::Load {
                    dst: old,
                    place: place.clone(),
                    span,
                });
                let r = self.lower_expr(rhs)?;
                let t = self.new_temp(TempOrigin::Bin(*bin));
                self.emit(Inst::Bin {
                    dst: t,
                    op: *bin,
                    lhs: Operand::Temp(old),
                    rhs: r.clone(),
                    span,
                });
                let info = match (bin, r.as_const()) {
                    (BinOp::Add, Some(c)) => StoreInfo::SelfOffset { delta: c },
                    (BinOp::Sub, Some(c)) => StoreInfo::SelfOffset { delta: -c },
                    _ => StoreInfo::Normal,
                };
                self.emit(Inst::Store {
                    place,
                    value: Operand::Temp(t),
                    info,
                    span,
                });
                Ok(Operand::Temp(t))
            }
        }
    }

    /// Lowers a call; returns the result temp (if the callee returns a value)
    /// and the resolved callee.
    fn lower_call(
        &mut self,
        callee: &str,
        args: &[Expr],
        span: Span,
    ) -> Result<(Option<TempId>, Callee), LowerError> {
        let mut arg_ops = Vec::with_capacity(args.len());
        for a in args {
            arg_ops.push(self.lower_expr(a)?);
        }
        // A name bound to a local/global variable is an indirect call through
        // a function pointer; otherwise it is a direct call.
        if let Some(slot) = self.lookup(callee) {
            let t = self.new_temp(TempOrigin::Load(Place::Local(slot)));
            self.emit(Inst::Load {
                dst: t,
                place: Place::Local(slot),
                span,
            });
            let dst = self.new_temp(TempOrigin::IndirectCall);
            self.emit(Inst::Call {
                dst: Some(dst),
                callee: Callee::Indirect(t),
                args: arg_ops,
                span,
            });
            return Ok((Some(dst), Callee::Indirect(t)));
        }
        if self.ctx.globals.contains_key(callee) {
            let t = self.new_temp(TempOrigin::Load(Place::Global(callee.to_string())));
            self.emit(Inst::Load {
                dst: t,
                place: Place::Global(callee.to_string()),
                span,
            });
            let dst = self.new_temp(TempOrigin::IndirectCall);
            self.emit(Inst::Call {
                dst: Some(dst),
                callee: Callee::Indirect(t),
                args: arg_ops,
                span,
            });
            return Ok((Some(dst), Callee::Indirect(t)));
        }
        let ret = self.ctx.func_ret.get(callee).cloned().unwrap_or(Type::Int);
        let dst = if ret == Type::Void {
            None
        } else {
            Some(self.new_temp(TempOrigin::Call(callee.to_string())))
        };
        self.emit(Inst::Call {
            dst,
            callee: Callee::Direct(callee.to_string()),
            args: arg_ops,
            span,
        });
        Ok((dst, Callee::Direct(callee.to_string())))
    }
}
