//! Token definitions for the MiniC lexer.

use crate::span::Span;

/// The kind of a lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    // Literals and identifiers.
    /// An integer literal (decimal, hex `0x..`, or char constant folded to its value).
    Int(i64),
    /// A string literal, without the surrounding quotes.
    Str(String),
    /// An identifier or keyword candidate.
    Ident(String),

    // Keywords.
    KwInt,
    KwUnsigned,
    KwLong,
    KwChar,
    KwBool,
    KwVoid,
    KwSizeT,
    KwStruct,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,
    KwSwitch,
    KwCase,
    KwDefault,
    KwDo,
    KwStatic,
    KwConst,
    KwTrue,
    KwFalse,
    KwNull,

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow,
    Amp,
    AmpAmp,
    Pipe,
    PipePipe,
    Caret,
    Tilde,
    Bang,
    BangEq,
    Plus,
    PlusPlus,
    PlusEq,
    Minus,
    MinusMinus,
    MinusEq,
    Star,
    StarEq,
    Slash,
    SlashEq,
    Percent,
    PercentEq,
    Lt,
    LtEq,
    Shl,
    Gt,
    GtEq,
    Shr,
    Eq,
    EqEq,
    AmpEq,
    PipeEq,
    CaretEq,
    Question,
    Colon,

    // Attributes recognised as single tokens.
    /// `[[maybe_unused]]` or `__attribute__((unused))`.
    AttrUnused,

    // Preprocessor directives (line-oriented, surfaced as tokens).
    /// `#if NAME`, `#ifdef NAME` — the payload is the guard symbol.
    HashIf(String),
    /// `#ifndef NAME`.
    HashIfNot(String),
    /// `#else`.
    HashElse,
    /// `#endif`.
    HashEndif,

    /// A region the lexer could not tokenise. Only produced by
    /// [`crate::lexer::lex_recovering`]; the strict [`crate::lexer::lex`]
    /// entry point reports the same region as a hard `LexError` instead.
    Error,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword kind for `ident`, if it is a keyword.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        Some(match ident {
            "int" => TokenKind::KwInt,
            "unsigned" => TokenKind::KwUnsigned,
            "long" => TokenKind::KwLong,
            "char" => TokenKind::KwChar,
            "bool" => TokenKind::KwBool,
            "void" => TokenKind::KwVoid,
            "size_t" => TokenKind::KwSizeT,
            "struct" => TokenKind::KwStruct,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "for" => TokenKind::KwFor,
            "return" => TokenKind::KwReturn,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            "switch" => TokenKind::KwSwitch,
            "case" => TokenKind::KwCase,
            "default" => TokenKind::KwDefault,
            "do" => TokenKind::KwDo,
            "static" => TokenKind::KwStatic,
            "const" => TokenKind::KwConst,
            "true" => TokenKind::KwTrue,
            "false" => TokenKind::KwFalse,
            "NULL" => TokenKind::KwNull,
            _ => return None,
        })
    }

    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Str(_) => "string literal".into(),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Error => "invalid token".into(),
            TokenKind::Eof => "end of input".into(),
            other => format!("{other:?}"),
        }
    }
}

/// A token with its source span.
#[derive(Clone, Debug)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed.
    pub span: Span,
}
