//! Control-flow-graph utilities over lowered functions.
//!
//! The liveness analysis of the paper traverses basic blocks "reversely"
//! (Fig. 4); these helpers provide predecessor maps, postorder, and reverse
//! postorder so backward analyses visit blocks in an order that converges
//! quickly.

use crate::ir::{
    BlockId,
    Function, //
};

/// Predecessor/successor maps for a function's CFG.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// `succs[b]` = successor blocks of `b`.
    pub succs: Vec<Vec<BlockId>>,
    /// `preds[b]` = predecessor blocks of `b`.
    pub preds: Vec<Vec<BlockId>>,
    /// The entry block.
    pub entry: BlockId,
}

impl Cfg {
    /// Builds the CFG of `f`.
    pub fn new(f: &Function) -> Self {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (id, bb) in f.iter_blocks() {
            let ss = bb.term.successors();
            for s in &ss {
                preds[s.0 as usize].push(id);
            }
            succs[id.0 as usize] = ss;
        }
        Self {
            succs,
            preds,
            entry: f.entry,
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the CFG has no blocks (never true for lowered functions).
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.0 as usize]
    }

    /// Predecessors of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.0 as usize]
    }

    /// Blocks in postorder from the entry (unreachable blocks appended last).
    pub fn postorder(&self) -> Vec<BlockId> {
        let mut seen = vec![false; self.len()];
        let mut out = Vec::with_capacity(self.len());
        self.po_visit(self.entry, &mut seen, &mut out);
        // Unreachable blocks still contain instructions (e.g. code after an
        // unconditional return); append them so analyses see every block.
        for i in 0..self.len() {
            if !seen[i] {
                self.po_visit(BlockId(i as u32), &mut seen, &mut out);
            }
        }
        out
    }

    fn po_visit(&self, b: BlockId, seen: &mut [bool], out: &mut Vec<BlockId>) {
        // Iterative DFS to avoid recursion depth limits on long CFG chains.
        let mut stack = vec![(b, 0usize)];
        if seen[b.0 as usize] {
            return;
        }
        seen[b.0 as usize] = true;
        while let Some((node, child)) = stack.pop() {
            let succs = self.succs(node);
            if child < succs.len() {
                stack.push((node, child + 1));
                let s = succs[child];
                if !seen[s.0 as usize] {
                    seen[s.0 as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                out.push(node);
            }
        }
    }

    /// Blocks in reverse postorder (good order for forward analyses).
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut po = self.postorder();
        po.reverse();
        po
    }

    /// Whether every block is reachable from the entry.
    pub fn all_reachable(&self) -> bool {
        let mut seen = vec![false; self.len()];
        let mut stack = vec![self.entry];
        seen[self.entry.0 as usize] = true;
        let mut count = 1;
        while let Some(b) = stack.pop() {
            for &s in self.succs(b) {
                if !seen[s.0 as usize] {
                    seen[s.0 as usize] = true;
                    count += 1;
                    stack.push(s);
                }
            }
        }
        count == self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        parser::parse,
        program::Program,
        span::FileId, //
    };

    fn lower(src: &str) -> Function {
        let m = parse(FileId(0), src).unwrap();
        let prog = Program::from_modules(vec![("test.c".into(), m)], &[]).unwrap();
        prog.funcs.into_iter().next().unwrap()
    }

    #[test]
    fn straight_line_has_single_block_path() {
        let f = lower("int f(int x) { int y = x; return y; }");
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.preds(f.entry).len(), 0);
    }

    #[test]
    fn if_else_makes_diamond() {
        let f = lower("int f(int x) { int y = 0; if (x) { y = 1; } else { y = 2; } return y; }");
        let cfg = Cfg::new(&f);
        // Entry + then + else + merge (+ possibly a trailing dead block).
        let diamond_merge = cfg.preds.iter().filter(|p| p.len() == 2).count();
        assert!(diamond_merge >= 1, "expected a merge block with 2 preds");
    }

    #[test]
    fn while_loop_has_back_edge() {
        let f = lower("void f(int n) { int i = 0; while (i < n) { i = i + 1; } }");
        let cfg = Cfg::new(&f);
        // Some block must have a successor with a smaller id (the back edge).
        let has_back_edge = (0..cfg.len()).any(|b| {
            cfg.succs(BlockId(b as u32))
                .iter()
                .any(|s| (s.0 as usize) < b)
        });
        assert!(has_back_edge);
    }

    #[test]
    fn postorder_covers_every_block() {
        let f = lower(
            "int f(int x) { if (x) { return 1; } for (int i = 0; i < x; i = i + 1) { g(i); } \
             return 0; }",
        );
        let cfg = Cfg::new(&f);
        let po = cfg.postorder();
        assert_eq!(po.len(), cfg.len());
        let mut sorted: Vec<u32> = po.iter().map(|b| b.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..cfg.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn reverse_postorder_starts_at_entry() {
        let f = lower("void f(int x) { if (x) { g(); } h(); }");
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.reverse_postorder()[0], f.entry);
    }
}
