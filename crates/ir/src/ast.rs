//! Abstract syntax tree for MiniC.
//!
//! The AST preserves everything the later phases need: source spans on every
//! node (for authorship lookup), `unused` attributes (for unused-hint
//! pruning), and the stack of preprocessor guards active at each statement
//! (for configuration-dependency pruning).

use crate::{
    span::Span,
    types::Type, //
};

/// A parsed source file.
#[derive(Clone, Debug)]
pub struct Module {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// A top-level item.
#[derive(Clone, Debug)]
pub enum Item {
    /// A struct definition.
    Struct(StructDef),
    /// A function definition with a body.
    Func(FuncDef),
    /// A function declaration (prototype) without a body.
    FuncDecl(FuncDecl),
    /// A global variable definition.
    Global(GlobalDef),
}

/// A struct definition.
#[derive(Clone, Debug)]
pub struct StructDef {
    /// Struct name (tag).
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<FieldDef>,
    /// Span of the whole definition.
    pub span: Span,
}

/// One field of a struct.
#[derive(Clone, Debug)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// Span of the field declaration.
    pub span: Span,
}

/// A function prototype: name, signature, and parameter metadata.
#[derive(Clone, Debug)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters.
    pub params: Vec<Param>,
    /// Span of the prototype.
    pub span: Span,
}

/// A function definition.
#[derive(Clone, Debug)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters.
    pub params: Vec<Param>,
    /// The body.
    pub body: Block,
    /// Whether the function was declared `static`.
    pub is_static: bool,
    /// Span of the signature line.
    pub span: Span,
}

/// A function parameter.
#[derive(Clone, Debug)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
    /// Whether the parameter carries an `unused` attribute.
    pub unused_attr: bool,
    /// Span of the parameter.
    pub span: Span,
}

/// A global variable definition.
#[derive(Clone, Debug)]
pub struct GlobalDef {
    /// Variable name.
    pub name: String,
    /// Variable type.
    pub ty: Type,
    /// Optional constant initializer.
    pub init: Option<Expr>,
    /// Span of the definition.
    pub span: Span,
}

/// A `{ ... }` block of statements.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

/// A preprocessor guard active over a region of code.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Guard {
    /// The region is compiled when `symbol` is defined (`#if`/`#ifdef`).
    Defined(String),
    /// The region is compiled when `symbol` is **not** defined
    /// (`#ifndef`, or the `#else` branch of an `#if`).
    NotDefined(String),
}

impl Guard {
    /// The guard selecting the opposite branch.
    pub fn negate(&self) -> Guard {
        match self {
            Guard::Defined(s) => Guard::NotDefined(s.clone()),
            Guard::NotDefined(s) => Guard::Defined(s.clone()),
        }
    }

    /// Whether this guard admits the region under configuration `defines`.
    pub fn enabled(&self, defines: &[String]) -> bool {
        match self {
            Guard::Defined(s) => defines.iter().any(|d| d == s),
            Guard::NotDefined(s) => !defines.iter().any(|d| d == s),
        }
    }
}

/// One arm of a `switch`.
#[derive(Clone, Debug)]
pub struct SwitchCase {
    /// The constant labels selecting this arm (stacked `case`s).
    pub values: Vec<i64>,
    /// The arm body.
    pub body: Block,
}

/// A statement with its span and active preprocessor guards.
#[derive(Clone, Debug)]
pub struct Stmt {
    /// The statement itself.
    pub kind: StmtKind,
    /// Source span.
    pub span: Span,
    /// Preprocessor guards enclosing the statement, outermost first.
    pub guards: Vec<Guard>,
}

/// Statement kinds.
#[derive(Clone, Debug)]
pub enum StmtKind {
    /// A local variable declaration, optionally initialized.
    Decl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Optional initializer expression.
        init: Option<Expr>,
        /// Whether the declaration carries an `unused` attribute.
        unused_attr: bool,
    },
    /// An expression evaluated for effect.
    Expr(Expr),
    /// An `if`/`else` statement.
    If {
        /// Branch condition.
        cond: Expr,
        /// Taken when the condition is nonzero.
        then: Block,
        /// Taken otherwise, if present.
        els: Option<Block>,
    },
    /// A `while` loop.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// A `do { ... } while (cond);` loop (body runs at least once).
    DoWhile {
        /// Loop body.
        body: Block,
        /// Loop condition, evaluated after each iteration.
        cond: Expr,
    },
    /// A `switch` statement. Case bodies do not fall through: each arm ends
    /// at the next `case`/`default` label (an explicit trailing `break;` is
    /// accepted and redundant); empty arms stack their labels onto the next
    /// body, so `case 1: case 2: f();` works as in C.
    Switch {
        /// The switched-on expression.
        scrutinee: Expr,
        /// `(label values, body)` arms in source order.
        cases: Vec<SwitchCase>,
        /// The `default:` body, if present.
        default: Option<Block>,
    },
    /// A `for` loop. Any of the three clauses may be absent.
    For {
        /// Initialization statement (a declaration or expression).
        init: Option<Box<Stmt>>,
        /// Loop condition.
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Block,
    },
    /// A `return`, with an optional value.
    Return(Option<Expr>),
    /// A `break` out of the innermost loop.
    Break,
    /// A `continue` of the innermost loop.
    Continue,
    /// A nested block.
    Block(Block),
    /// A poisoned region: source the parser discarded during error recovery
    /// (`parse_recovering`). Lowering treats it as a no-op, but its presence
    /// marks the enclosing function as recovered, so downstream candidates
    /// degrade to `low_confidence`.
    Error,
}

impl Block {
    /// Number of poisoned [`StmtKind::Error`] nodes in this block, nested
    /// blocks included. Nonzero exactly when the enclosing function was
    /// rebuilt by parse recovery.
    pub fn poisoned_count(&self) -> usize {
        fn in_stmt(s: &Stmt) -> usize {
            match &s.kind {
                StmtKind::Error => 1,
                StmtKind::If { then, els, .. } => {
                    then.poisoned_count() + els.as_ref().map_or(0, Block::poisoned_count)
                }
                StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
                    body.poisoned_count()
                }
                StmtKind::For { init, body, .. } => {
                    init.as_deref().map_or(0, in_stmt) + body.poisoned_count()
                }
                StmtKind::Switch { cases, default, .. } => {
                    cases.iter().map(|c| c.body.poisoned_count()).sum::<usize>()
                        + default.as_ref().map_or(0, Block::poisoned_count)
                }
                StmtKind::Block(b) => b.poisoned_count(),
                _ => 0,
            }
        }
        self.stmts.iter().map(in_stmt).sum()
    }
}

/// An expression with its span.
#[derive(Clone, Debug)]
pub struct Expr {
    /// The expression itself.
    pub kind: ExprKind,
    /// Source span.
    pub span: Span,
}

/// Unary operator kinds (excluding `*`/`&`, which are [`ExprKind::Deref`] and
/// [`ExprKind::AddrOf`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical not `!e`.
    Not,
    /// Bitwise not `~e`.
    BitNot,
}

/// Binary operator kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

impl BinOp {
    /// Whether the operator is `&&` or `||` (short-circuiting).
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Expression kinds.
#[derive(Clone, Debug)]
pub enum ExprKind {
    /// Integer (or folded character) literal.
    IntLit(i64),
    /// String literal.
    StrLit(String),
    /// `true` / `false`.
    BoolLit(bool),
    /// `NULL`.
    Null,
    /// A reference to a named variable or function.
    Var(String),
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// Pointer dereference `*e`.
    Deref(Box<Expr>),
    /// Address-of `&e`.
    AddrOf(Box<Expr>),
    /// Pre/post increment or decrement.
    IncDec {
        /// `+1` for `++`, `-1` for `--`.
        delta: i64,
        /// True for prefix form.
        pre: bool,
        /// The lvalue being adjusted.
        target: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Simple or compound assignment (`=`, `+=`, ...).
    Assign {
        /// `None` for `=`, the combining operator for compound forms.
        op: Option<BinOp>,
        /// Target lvalue.
        lhs: Box<Expr>,
        /// Value expression.
        rhs: Box<Expr>,
    },
    /// A call. The callee is a name; name resolution decides whether it is a
    /// direct call or an indirect call through a variable of pointer type.
    Call {
        /// Callee name.
        callee: String,
        /// Arguments in order.
        args: Vec<Expr>,
    },
    /// Member access `base.field` or `base->field`.
    Member {
        /// The aggregate (or pointer to it).
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// True for `->`.
        arrow: bool,
    },
    /// Array indexing `base[index]`.
    Index {
        /// The array or pointer.
        base: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
    /// A C cast `(ty)e`. A cast to `void` is the classic "silence the unused
    /// warning" idiom and is preserved for pruning.
    Cast {
        /// Target type.
        ty: Type,
        /// Operand.
        expr: Box<Expr>,
    },
    /// The ternary conditional `c ? a : b`.
    Ternary {
        /// The condition.
        cond: Box<Expr>,
        /// Value when true.
        then: Box<Expr>,
        /// Value when false.
        els: Box<Expr>,
    },
}

impl Expr {
    /// Returns true if the expression is an lvalue form we can assign to.
    pub fn is_lvalue(&self) -> bool {
        matches!(
            self.kind,
            ExprKind::Var(_)
                | ExprKind::Deref(_)
                | ExprKind::Member { .. }
                | ExprKind::Index { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_negation_round_trips() {
        let g = Guard::Defined("USE_ICMP".into());
        assert_eq!(g.negate().negate(), g);
    }

    #[test]
    fn guard_enablement() {
        let g = Guard::Defined("A".into());
        assert!(g.enabled(&["A".into()]));
        assert!(!g.enabled(&[]));
        assert!(g.negate().enabled(&[]));
        assert!(!g.negate().enabled(&["A".into()]));
    }
}
