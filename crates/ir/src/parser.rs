//! Recursive-descent parser for MiniC.
//!
//! The grammar is a C subset rich enough to express every code pattern the
//! paper discusses: struct field writes, pointer/cursor idioms (`*o++ = c`),
//! ignored return values, `(void)` casts, `unused` attributes, and
//! preprocessor-guarded statements.
//!
//! Two entry points share the grammar: [`parse`] fails on the first error,
//! while [`parse_recovering`] performs panic-mode recovery with two
//! synchronization sets. Inside a function body an error discards to the
//! next `;` or `}` at the current brace depth and leaves a poisoned
//! [`StmtKind::Error`] node; at top level an error discards to the next
//! item-start keyword (or past a balanced `{...}`), so one mangled function
//! or struct drops only itself.

use crate::{
    ast::{
        BinOp,
        Block,
        Expr,
        ExprKind,
        FieldDef,
        FuncDecl,
        FuncDef,
        GlobalDef,
        Guard,
        Item,
        Module,
        Param,
        Stmt,
        StmtKind,
        StructDef,
        SwitchCase,
        UnOp, //
    },
    lexer::{
        lex,
        lex_recovering,
        LexError, //
    },
    span::{
        FileId,
        Span, //
    },
    token::{
        Token,
        TokenKind, //
    },
    types::Type,
};

/// An error produced while parsing.
#[derive(Clone, Debug)]
pub struct ParseError {
    /// Explanation of what went wrong.
    pub message: String,
    /// Where it went wrong.
    pub span: Span,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::lexer::LexError> for ParseError {
    fn from(e: crate::lexer::LexError) -> Self {
        ParseError {
            message: e.message,
            span: e.span,
        }
    }
}

/// Parses one source file into a [`Module`].
///
/// # Examples
///
/// ```
/// use vc_ir::{parser::parse, span::FileId};
/// let m = parse(FileId(0), "int main(void) { return 0; }").unwrap();
/// assert_eq!(m.items.len(), 1);
/// ```
pub fn parse(file: FileId, src: &str) -> Result<Module, ParseError> {
    let tokens = lex(file, src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        guards: Vec::new(),
        recovery: None,
    };
    p.module()
}

/// One diagnostic collected during error recovery.
#[derive(Clone, Debug)]
pub struct RecoveredDiag {
    /// The underlying parse error.
    pub error: ParseError,
    /// The function the error was attributed to: the enclosing function for
    /// a statement-level recovery, or a best-effort guess (the first
    /// `ident (` in the discarded region) for a dropped top-level item.
    pub function: Option<String>,
    /// True when the whole enclosing top-level item was discarded; false
    /// when recovery kept the item and poisoned only a statement region.
    pub dropped_item: bool,
}

/// Result of [`parse_with_recovery`]: whatever could be salvaged, plus every
/// diagnostic encountered along the way.
#[derive(Clone, Debug)]
pub struct Recovered {
    /// The surviving items. Function bodies may contain poisoned
    /// [`StmtKind::Error`] statements (see [`crate::ast::Block::poisoned_count`]).
    pub module: Module,
    /// Every lexical diagnostic, in source order.
    pub lex_errors: Vec<LexError>,
    /// Every parse diagnostic with its recovery fate.
    pub diags: Vec<RecoveredDiag>,
}

/// Parses with panic-mode error recovery, never failing outright: lexing
/// uses [`lex_recovering`], statement errors poison only the region up to
/// the next `;`/`}` at the current brace depth, and top-level errors drop
/// only the offending item.
///
/// # Examples
///
/// ```
/// use vc_ir::{parser::parse_recovering, span::FileId};
/// let src = "int ok(void) { return 1; }\nint broken(void) { int x = $$; use(x); }";
/// let (m, errs) = parse_recovering(FileId(0), src);
/// assert_eq!(m.items.len(), 2); // both functions survive
/// assert!(!errs.is_empty());
/// ```
pub fn parse_recovering(file: FileId, src: &str) -> (Module, Vec<ParseError>) {
    let r = parse_with_recovery(file, src);
    let mut errors: Vec<ParseError> = r.lex_errors.into_iter().map(ParseError::from).collect();
    errors.extend(r.diags.into_iter().map(|d| d.error));
    (r.module, errors)
}

/// Like [`parse_recovering`], but keeps lex and parse diagnostics separate
/// and records each parse error's recovery fate (function attribution,
/// dropped vs. poisoned) for per-function failure reporting.
pub fn parse_with_recovery(file: FileId, src: &str) -> Recovered {
    let (tokens, lex_errors) = lex_recovering(file, src);
    let mut p = Parser {
        tokens,
        pos: 0,
        guards: Vec::new(),
        recovery: Some(RecoveryState::default()),
    };
    let module = p
        .module()
        .expect("recovery-mode module() never fails outright");
    Recovered {
        module,
        lex_errors,
        diags: p.recovery.expect("recovery state intact").diags,
    }
}

#[derive(Default)]
struct RecoveryState {
    diags: Vec<RecoveredDiag>,
    current_func: Option<String>,
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    guards: Vec<Guard>,
    recovery: Option<RecoveryState>,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        let idx = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, ParseError> {
        if self.peek() == &kind {
            Ok(self.bump())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let sp = self.span();
                self.bump();
                Ok((name, sp))
            }
            other => Err(self.error(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            span: self.span(),
        }
    }

    // ----- Error recovery -----------------------------------------------

    fn recovering(&self) -> bool {
        self.recovery.is_some()
    }

    fn current_func(&self) -> Option<String> {
        self.recovery.as_ref().and_then(|r| r.current_func.clone())
    }

    fn record(&mut self, error: ParseError, function: Option<String>, dropped_item: bool) {
        if let Some(r) = &mut self.recovery {
            r.diags.push(RecoveredDiag {
                error,
                function,
                dropped_item,
            });
        }
    }

    /// Applies one preprocessor-directive token to the guard stack without
    /// ever failing; used while skipping a discarded region so guard
    /// bookkeeping stays balanced across the recovery.
    fn apply_directive_tolerant(&mut self, kind: &TokenKind) {
        match kind {
            TokenKind::HashIf(s) => self.guards.push(Guard::Defined(s.clone())),
            TokenKind::HashIfNot(s) => self.guards.push(Guard::NotDefined(s.clone())),
            TokenKind::HashElse => {
                if let Some(top) = self.guards.pop() {
                    self.guards.push(top.negate());
                }
            }
            TokenKind::HashEndif => {
                self.guards.pop();
            }
            _ => {}
        }
    }

    /// Statement-level synchronization: skips to the next `;` (consumed) or
    /// the `}` closing the current brace depth (left in place), counting
    /// braces opened inside the discarded region. Fails only at end of
    /// input, in which case the enclosing item is beyond saving.
    fn sync_stmt(&mut self) -> Result<(), ParseError> {
        let mut depth = 0usize;
        loop {
            match self.peek().clone() {
                TokenKind::Eof => {
                    return Err(self.error("unexpected end of input inside block"));
                }
                TokenKind::Semi if depth == 0 => {
                    self.bump();
                    return Ok(());
                }
                TokenKind::RBrace if depth == 0 => return Ok(()),
                TokenKind::RBrace => {
                    depth -= 1;
                    self.bump();
                }
                TokenKind::LBrace => {
                    depth += 1;
                    self.bump();
                }
                dir @ (TokenKind::HashIf(_)
                | TokenKind::HashIfNot(_)
                | TokenKind::HashElse
                | TokenKind::HashEndif) => {
                    self.apply_directive_tolerant(&dir);
                    self.bump();
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Top-level synchronization: skips to the next item-start keyword at
    /// zero brace/paren depth, past the `}` closing the broken item's body,
    /// or past a stray top-level `;`. Parens are tracked so a mangled
    /// signature does not resynchronize inside its own parameter list.
    fn sync_top_level(&mut self, failed_at: usize) {
        if self.pos == failed_at && !matches!(self.peek(), TokenKind::Eof) {
            self.bump();
        }
        let mut braces = 0usize;
        let mut parens = 0usize;
        loop {
            match self.peek().clone() {
                TokenKind::Eof => return,
                TokenKind::LBrace => {
                    braces += 1;
                    self.bump();
                }
                TokenKind::RBrace => {
                    self.bump();
                    if braces <= 1 {
                        return;
                    }
                    braces -= 1;
                }
                TokenKind::LParen => {
                    parens += 1;
                    self.bump();
                }
                TokenKind::RParen => {
                    parens = parens.saturating_sub(1);
                    self.bump();
                }
                TokenKind::Semi if braces == 0 && parens == 0 => {
                    self.bump();
                    return;
                }
                TokenKind::KwStatic if braces == 0 && parens == 0 => return,
                _ if braces == 0 && parens == 0 && self.at_type_start() => return,
                dir @ (TokenKind::HashIf(_)
                | TokenKind::HashIfNot(_)
                | TokenKind::HashElse
                | TokenKind::HashEndif) => {
                    self.apply_directive_tolerant(&dir);
                    self.bump();
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Best-effort name for a dropped item: the first identifier directly
    /// followed by `(` in the discarded token range.
    fn guess_func_name(&self, from: usize) -> Option<String> {
        let to = self.pos.min(self.tokens.len());
        for i in from..to {
            if let TokenKind::Ident(name) = &self.tokens[i].kind {
                if matches!(
                    self.tokens.get(i + 1).map(|t| &t.kind),
                    Some(TokenKind::LParen)
                ) {
                    return Some(name.clone());
                }
            }
        }
        None
    }

    /// Consumes any preprocessor directives at the current position,
    /// updating the guard stack. Returns an error on unbalanced `#endif`
    /// (recorded as a diagnostic instead when recovering).
    fn drain_directives(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek().clone() {
                TokenKind::HashIf(sym) => {
                    self.bump();
                    self.guards.push(Guard::Defined(sym));
                }
                TokenKind::HashIfNot(sym) => {
                    self.bump();
                    self.guards.push(Guard::NotDefined(sym));
                }
                TokenKind::HashElse => {
                    self.bump();
                    match self.guards.pop() {
                        Some(top) => self.guards.push(top.negate()),
                        None if self.recovering() => {
                            let e = self.error("#else without matching #if");
                            let f = self.current_func();
                            self.record(e, f, false);
                        }
                        None => return Err(self.error("#else without matching #if")),
                    }
                }
                TokenKind::HashEndif => {
                    self.bump();
                    if self.guards.pop().is_none() {
                        if self.recovering() {
                            let e = self.error("#endif without matching #if");
                            let f = self.current_func();
                            self.record(e, f, false);
                        } else {
                            return Err(self.error("#endif without matching #if"));
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    // ----- Items --------------------------------------------------------

    fn module(&mut self) -> Result<Module, ParseError> {
        let mut items = Vec::new();
        loop {
            self.drain_directives()?;
            if matches!(self.peek(), TokenKind::Eof) {
                if !self.guards.is_empty() {
                    if self.recovering() {
                        let e = self.error("unterminated #if at end of file");
                        self.record(e, None, false);
                        self.guards.clear();
                    } else {
                        return Err(self.error("unterminated #if at end of file"));
                    }
                }
                return Ok(Module { items });
            }
            if self.recovering() {
                let item_start = self.pos;
                match self.item() {
                    Ok(item) => items.push(item),
                    Err(e) => {
                        self.sync_top_level(item_start);
                        let function = self.guess_func_name(item_start);
                        self.record(e, function, true);
                    }
                }
            } else {
                items.push(self.item()?);
            }
        }
    }

    fn item(&mut self) -> Result<Item, ParseError> {
        if matches!(self.peek(), TokenKind::KwStruct)
            && matches!(self.peek_at(1), TokenKind::Ident(_))
            && matches!(self.peek_at(2), TokenKind::LBrace)
        {
            return Ok(Item::Struct(self.struct_def()?));
        }
        let is_static = self.eat(&TokenKind::KwStatic);
        let ty = self.parse_type()?;
        let (name, name_span) = self.expect_ident()?;
        if matches!(self.peek(), TokenKind::LParen) {
            self.function_tail(is_static, ty, name, name_span)
        } else {
            // Global variable.
            let ty = self.array_suffix(ty)?;
            let init = if self.eat(&TokenKind::Eq) {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect(TokenKind::Semi)?;
            Ok(Item::Global(GlobalDef {
                name,
                ty,
                init,
                span: name_span,
            }))
        }
    }

    fn struct_def(&mut self) -> Result<StructDef, ParseError> {
        let start = self.span();
        self.expect(TokenKind::KwStruct)?;
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            let ty = self.parse_type()?;
            let (fname, fspan) = self.expect_ident()?;
            let ty = self.array_suffix(ty)?;
            self.expect(TokenKind::Semi)?;
            fields.push(FieldDef {
                name: fname,
                ty,
                span: fspan,
            });
        }
        self.expect(TokenKind::Semi)?;
        Ok(StructDef {
            name,
            fields,
            span: start.to(self.prev_span()),
        })
    }

    fn function_tail(
        &mut self,
        is_static: bool,
        ret: Type,
        name: String,
        span: Span,
    ) -> Result<Item, ParseError> {
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            if matches!(self.peek(), TokenKind::KwVoid)
                && matches!(self.peek_at(1), TokenKind::RParen)
            {
                self.bump();
                self.bump();
            } else {
                loop {
                    params.push(self.param()?);
                    if !self.eat(&TokenKind::Comma) {
                        self.expect(TokenKind::RParen)?;
                        break;
                    }
                }
            }
        }
        if self.eat(&TokenKind::Semi) {
            return Ok(Item::FuncDecl(FuncDecl {
                name,
                ret,
                params,
                span,
            }));
        }
        if let Some(r) = &mut self.recovery {
            r.current_func = Some(name.clone());
        }
        let body = self.block();
        if let Some(r) = &mut self.recovery {
            r.current_func = None;
        }
        let body = body?;
        Ok(Item::Func(FuncDef {
            name,
            ret,
            params,
            body,
            is_static,
            span,
        }))
    }

    fn param(&mut self) -> Result<Param, ParseError> {
        let mut unused_attr = self.eat(&TokenKind::AttrUnused);
        let ty = self.parse_type()?;
        unused_attr |= self.eat(&TokenKind::AttrUnused);
        let (name, span) = self.expect_ident()?;
        unused_attr |= self.eat(&TokenKind::AttrUnused);
        let ty = self.array_suffix(ty)?;
        Ok(Param {
            name,
            ty,
            unused_attr,
            span,
        })
    }

    // ----- Types --------------------------------------------------------

    fn at_type_start(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::KwInt
                | TokenKind::KwUnsigned
                | TokenKind::KwLong
                | TokenKind::KwChar
                | TokenKind::KwBool
                | TokenKind::KwVoid
                | TokenKind::KwSizeT
                | TokenKind::KwStruct
                | TokenKind::KwConst
        )
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        self.eat(&TokenKind::KwConst);
        let mut ty = match self.peek().clone() {
            TokenKind::KwInt => {
                self.bump();
                Type::Int
            }
            TokenKind::KwUnsigned => {
                self.bump();
                self.eat(&TokenKind::KwInt);
                Type::Uint
            }
            TokenKind::KwLong => {
                self.bump();
                self.eat(&TokenKind::KwLong);
                self.eat(&TokenKind::KwInt);
                Type::Long
            }
            TokenKind::KwChar => {
                self.bump();
                Type::Char
            }
            TokenKind::KwBool => {
                self.bump();
                Type::Bool
            }
            TokenKind::KwVoid => {
                self.bump();
                Type::Void
            }
            TokenKind::KwSizeT => {
                self.bump();
                Type::SizeT
            }
            TokenKind::KwStruct => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                Type::Struct(name)
            }
            other => return Err(self.error(format!("expected a type, found {}", other.describe()))),
        };
        self.eat(&TokenKind::KwConst);
        while self.eat(&TokenKind::Star) {
            self.eat(&TokenKind::KwConst);
            ty = ty.ptr_to();
        }
        Ok(ty)
    }

    fn array_suffix(&mut self, ty: Type) -> Result<Type, ParseError> {
        if self.eat(&TokenKind::LBracket) {
            let n = match self.peek().clone() {
                TokenKind::Int(v) if v >= 0 => {
                    self.bump();
                    v as usize
                }
                other => {
                    return Err(
                        self.error(format!("expected array length, found {}", other.describe()))
                    )
                }
            };
            self.expect(TokenKind::RBracket)?;
            Ok(Type::Array(Box::new(ty), n))
        } else {
            Ok(ty)
        }
    }

    // ----- Statements ---------------------------------------------------

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect(TokenKind::LBrace)?;
        let depth = self.guards.len();
        let saved_guards = self.recovering().then(|| self.guards.clone());
        let mut stmts = Vec::new();
        loop {
            self.drain_directives()?;
            if self.eat(&TokenKind::RBrace) {
                if self.guards.len() != depth {
                    match &saved_guards {
                        Some(saved) => {
                            let e = self.error("#if not terminated before end of block");
                            let f = self.current_func();
                            self.record(e, f, false);
                            self.guards = saved.clone();
                        }
                        None => {
                            return Err(self.error("#if not terminated before end of block"));
                        }
                    }
                }
                return Ok(Block { stmts });
            }
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(self.error("unexpected end of input inside block"));
            }
            if self.recovering() {
                let start = self.span();
                match self.stmt() {
                    Ok(s) => stmts.push(s),
                    Err(e) => {
                        // Panic-mode recovery: discard to the sync point and
                        // poison the region. An Eof during the sync means the
                        // whole item is beyond saving — bubble the original
                        // error so the item is dropped instead.
                        if self.sync_stmt().is_err() {
                            return Err(e);
                        }
                        let f = self.current_func();
                        self.record(e, f, false);
                        stmts.push(Stmt {
                            kind: StmtKind::Error,
                            span: start.to(self.prev_span()),
                            guards: self.guards.clone(),
                        });
                    }
                }
            } else {
                stmts.push(self.stmt()?);
            }
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let guards = self.guards.clone();
        let start = self.span();
        let kind = self.stmt_kind()?;
        Ok(Stmt {
            kind,
            span: start.to(self.prev_span()),
            guards,
        })
    }

    fn stmt_kind(&mut self) -> Result<StmtKind, ParseError> {
        match self.peek().clone() {
            TokenKind::LBrace => Ok(StmtKind::Block(self.block()?)),
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::KwWhile => self.while_stmt(),
            TokenKind::KwDo => self.do_while_stmt(),
            TokenKind::KwSwitch => self.switch_stmt(),
            TokenKind::KwFor => self.for_stmt(),
            TokenKind::KwReturn => {
                self.bump();
                let value = if matches!(self.peek(), TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                Ok(StmtKind::Return(value))
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(StmtKind::Break)
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(StmtKind::Continue)
            }
            TokenKind::AttrUnused => {
                self.bump();
                let mut kind = self.decl_stmt()?;
                if let StmtKind::Decl { unused_attr, .. } = &mut kind {
                    *unused_attr = true;
                }
                Ok(kind)
            }
            TokenKind::KwStatic => {
                self.bump();
                self.decl_stmt()
            }
            _ if self.at_type_start() => self.decl_stmt(),
            _ => {
                let e = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(StmtKind::Expr(e))
            }
        }
    }

    fn decl_stmt(&mut self) -> Result<StmtKind, ParseError> {
        let ty = self.parse_type()?;
        let mut unused_attr = self.eat(&TokenKind::AttrUnused);
        let (name, _) = self.expect_ident()?;
        unused_attr |= self.eat(&TokenKind::AttrUnused);
        let ty = self.array_suffix(ty)?;
        let init = if self.eat(&TokenKind::Eq) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(TokenKind::Semi)?;
        Ok(StmtKind::Decl {
            name,
            ty,
            init,
            unused_attr,
        })
    }

    fn if_stmt(&mut self) -> Result<StmtKind, ParseError> {
        self.expect(TokenKind::KwIf)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let then = self.block_or_single()?;
        let els = if self.eat(&TokenKind::KwElse) {
            if matches!(self.peek(), TokenKind::KwIf) {
                // `else if` chains become a nested single-statement block.
                let nested = self.stmt()?;
                Some(Block {
                    stmts: vec![nested],
                })
            } else {
                Some(self.block_or_single()?)
            }
        } else {
            None
        };
        Ok(StmtKind::If { cond, then, els })
    }

    fn while_stmt(&mut self) -> Result<StmtKind, ParseError> {
        self.expect(TokenKind::KwWhile)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let body = self.block_or_single()?;
        Ok(StmtKind::While { cond, body })
    }

    fn do_while_stmt(&mut self) -> Result<StmtKind, ParseError> {
        self.expect(TokenKind::KwDo)?;
        let body = self.block_or_single()?;
        self.expect(TokenKind::KwWhile)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::Semi)?;
        Ok(StmtKind::DoWhile { body, cond })
    }

    fn switch_stmt(&mut self) -> Result<StmtKind, ParseError> {
        self.expect(TokenKind::KwSwitch)?;
        self.expect(TokenKind::LParen)?;
        let scrutinee = self.expr()?;
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::LBrace)?;
        let mut cases: Vec<SwitchCase> = Vec::new();
        let mut default: Option<Block> = None;
        let mut pending_values: Vec<i64> = Vec::new();
        loop {
            self.drain_directives()?;
            if self.eat(&TokenKind::RBrace) {
                if !pending_values.is_empty() {
                    // Trailing labels with an empty body select nothing.
                    cases.push(SwitchCase {
                        values: std::mem::take(&mut pending_values),
                        body: Block::default(),
                    });
                }
                break;
            }
            if self.eat(&TokenKind::KwCase) {
                let negative = self.eat(&TokenKind::Minus);
                let value = match self.peek().clone() {
                    TokenKind::Int(v) => {
                        self.bump();
                        if negative {
                            -v
                        } else {
                            v
                        }
                    }
                    other => {
                        return Err(self.error(format!(
                            "expected a constant case label, found {}",
                            other.describe()
                        )))
                    }
                };
                self.expect(TokenKind::Colon)?;
                pending_values.push(value);
                continue;
            }
            if self.eat(&TokenKind::KwDefault) {
                self.expect(TokenKind::Colon)?;
                let body = self.case_body()?;
                if default.is_some() {
                    return Err(self.error("duplicate default label"));
                }
                if !pending_values.is_empty() {
                    // `case 1: default:` — the stacked labels share the body.
                    cases.push(SwitchCase {
                        values: std::mem::take(&mut pending_values),
                        body: body.clone(),
                    });
                }
                default = Some(body);
                continue;
            }
            if pending_values.is_empty() {
                return Err(self.error("statement before the first case label"));
            }
            let body = self.case_body()?;
            cases.push(SwitchCase {
                values: std::mem::take(&mut pending_values),
                body,
            });
        }
        Ok(StmtKind::Switch {
            scrutinee,
            cases,
            default,
        })
    }

    /// Statements of one switch arm, up to the next label or closing brace.
    /// A trailing `break;` is consumed and dropped (arms never fall through).
    fn case_body(&mut self) -> Result<Block, ParseError> {
        let mut stmts = Vec::new();
        loop {
            self.drain_directives()?;
            match self.peek() {
                TokenKind::KwCase | TokenKind::KwDefault | TokenKind::RBrace => break,
                TokenKind::KwBreak => {
                    self.bump();
                    self.expect(TokenKind::Semi)?;
                    break;
                }
                TokenKind::Eof => return Err(self.error("unexpected end of input in switch")),
                _ => stmts.push(self.stmt()?),
            }
        }
        Ok(Block { stmts })
    }

    fn for_stmt(&mut self) -> Result<StmtKind, ParseError> {
        self.expect(TokenKind::KwFor)?;
        self.expect(TokenKind::LParen)?;
        let init = if self.eat(&TokenKind::Semi) {
            None
        } else {
            let guards = self.guards.clone();
            let start = self.span();
            let kind = if self.at_type_start() {
                self.decl_stmt()?
            } else {
                let e = self.expr()?;
                self.expect(TokenKind::Semi)?;
                StmtKind::Expr(e)
            };
            Some(Box::new(Stmt {
                kind,
                span: start.to(self.prev_span()),
                guards,
            }))
        };
        let cond = if matches!(self.peek(), TokenKind::Semi) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(TokenKind::Semi)?;
        let step = if matches!(self.peek(), TokenKind::RParen) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(TokenKind::RParen)?;
        let body = self.block_or_single()?;
        Ok(StmtKind::For {
            init,
            cond,
            step,
            body,
        })
    }

    /// A block, or a single statement wrapped in a block (brace-less bodies).
    fn block_or_single(&mut self) -> Result<Block, ParseError> {
        if matches!(self.peek(), TokenKind::LBrace) {
            self.block()
        } else {
            let stmt = self.stmt()?;
            Ok(Block { stmts: vec![stmt] })
        }
    }

    // ----- Expressions --------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.assign_expr()
    }

    fn assign_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.ternary_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => None,
            TokenKind::PlusEq => Some(BinOp::Add),
            TokenKind::MinusEq => Some(BinOp::Sub),
            TokenKind::StarEq => Some(BinOp::Mul),
            TokenKind::SlashEq => Some(BinOp::Div),
            TokenKind::PercentEq => Some(BinOp::Rem),
            TokenKind::AmpEq => Some(BinOp::BitAnd),
            TokenKind::PipeEq => Some(BinOp::BitOr),
            TokenKind::CaretEq => Some(BinOp::BitXor),
            _ => return Ok(lhs),
        };
        if !lhs.is_lvalue() {
            return Err(self.error("left-hand side of assignment is not an lvalue"));
        }
        self.bump();
        let rhs = self.assign_expr()?;
        let span = lhs.span.to(rhs.span);
        Ok(Expr {
            kind: ExprKind::Assign {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            span,
        })
    }

    fn ternary_expr(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary_expr(0)?;
        if !self.eat(&TokenKind::Question) {
            return Ok(cond);
        }
        let then = self.expr()?;
        self.expect(TokenKind::Colon)?;
        let els = self.ternary_expr()?;
        let span = cond.span.to(els.span);
        Ok(Expr {
            kind: ExprKind::Ternary {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
            },
            span,
        })
    }

    fn binop_at(&self, level: usize) -> Option<BinOp> {
        // Precedence levels from lowest to highest.
        let op = match (level, self.peek()) {
            (0, TokenKind::PipePipe) => BinOp::Or,
            (1, TokenKind::AmpAmp) => BinOp::And,
            (2, TokenKind::Pipe) => BinOp::BitOr,
            (3, TokenKind::Caret) => BinOp::BitXor,
            (4, TokenKind::Amp) => BinOp::BitAnd,
            (5, TokenKind::EqEq) => BinOp::Eq,
            (5, TokenKind::BangEq) => BinOp::Ne,
            (6, TokenKind::Lt) => BinOp::Lt,
            (6, TokenKind::LtEq) => BinOp::Le,
            (6, TokenKind::Gt) => BinOp::Gt,
            (6, TokenKind::GtEq) => BinOp::Ge,
            (7, TokenKind::Shl) => BinOp::Shl,
            (7, TokenKind::Shr) => BinOp::Shr,
            (8, TokenKind::Plus) => BinOp::Add,
            (8, TokenKind::Minus) => BinOp::Sub,
            (9, TokenKind::Star) => BinOp::Mul,
            (9, TokenKind::Slash) => BinOp::Div,
            (9, TokenKind::Percent) => BinOp::Rem,
            _ => return None,
        };
        Some(op)
    }

    fn binary_expr(&mut self, level: usize) -> Result<Expr, ParseError> {
        const TOP: usize = 10;
        if level >= TOP {
            return self.unary_expr();
        }
        let mut lhs = self.binary_expr(level + 1)?;
        while let Some(op) = self.binop_at(level) {
            self.bump();
            let rhs = self.binary_expr(level + 1)?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        let kind = match self.peek().clone() {
            TokenKind::Minus => {
                self.bump();
                let e = self.unary_expr()?;
                ExprKind::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(e),
                }
            }
            TokenKind::Bang => {
                self.bump();
                let e = self.unary_expr()?;
                ExprKind::Unary {
                    op: UnOp::Not,
                    expr: Box::new(e),
                }
            }
            TokenKind::Tilde => {
                self.bump();
                let e = self.unary_expr()?;
                ExprKind::Unary {
                    op: UnOp::BitNot,
                    expr: Box::new(e),
                }
            }
            TokenKind::Star => {
                self.bump();
                let e = self.unary_expr()?;
                ExprKind::Deref(Box::new(e))
            }
            TokenKind::Amp => {
                self.bump();
                let e = self.unary_expr()?;
                ExprKind::AddrOf(Box::new(e))
            }
            TokenKind::PlusPlus => {
                self.bump();
                let e = self.unary_expr()?;
                ExprKind::IncDec {
                    delta: 1,
                    pre: true,
                    target: Box::new(e),
                }
            }
            TokenKind::MinusMinus => {
                self.bump();
                let e = self.unary_expr()?;
                ExprKind::IncDec {
                    delta: -1,
                    pre: true,
                    target: Box::new(e),
                }
            }
            TokenKind::LParen if self.type_cast_ahead() => {
                self.bump();
                let ty = self.parse_type()?;
                self.expect(TokenKind::RParen)?;
                let e = self.unary_expr()?;
                ExprKind::Cast {
                    ty,
                    expr: Box::new(e),
                }
            }
            _ => return self.postfix_expr(),
        };
        Ok(Expr {
            kind,
            span: start.to(self.prev_span()),
        })
    }

    /// True when `(` begins a cast, i.e. the next token starts a type.
    fn type_cast_ahead(&self) -> bool {
        matches!(
            self.peek_at(1),
            TokenKind::KwInt
                | TokenKind::KwUnsigned
                | TokenKind::KwLong
                | TokenKind::KwChar
                | TokenKind::KwBool
                | TokenKind::KwVoid
                | TokenKind::KwSizeT
                | TokenKind::KwStruct
                | TokenKind::KwConst
        )
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek().clone() {
                TokenKind::LParen => {
                    let callee = match &e.kind {
                        ExprKind::Var(name) => name.clone(),
                        _ => {
                            return Err(self.error(
                                "calls are only supported through a named callee or pointer \
                                 variable",
                            ))
                        }
                    };
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                self.expect(TokenKind::RParen)?;
                                break;
                            }
                        }
                    }
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        kind: ExprKind::Call { callee, args },
                        span,
                    };
                }
                TokenKind::LBracket => {
                    self.bump();
                    let index = self.expr()?;
                    self.expect(TokenKind::RBracket)?;
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        kind: ExprKind::Index {
                            base: Box::new(e),
                            index: Box::new(index),
                        },
                        span,
                    };
                }
                TokenKind::Dot | TokenKind::Arrow => {
                    let arrow = matches!(self.peek(), TokenKind::Arrow);
                    self.bump();
                    let (field, fspan) = self.expect_ident()?;
                    let span = e.span.to(fspan);
                    e = Expr {
                        kind: ExprKind::Member {
                            base: Box::new(e),
                            field,
                            arrow,
                        },
                        span,
                    };
                }
                TokenKind::PlusPlus | TokenKind::MinusMinus => {
                    let delta = if matches!(self.peek(), TokenKind::PlusPlus) {
                        1
                    } else {
                        -1
                    };
                    self.bump();
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        kind: ExprKind::IncDec {
                            delta,
                            pre: false,
                            target: Box::new(e),
                        },
                        span,
                    };
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        let span = self.span();
        let kind = match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                ExprKind::IntLit(v)
            }
            TokenKind::Str(s) => {
                self.bump();
                ExprKind::StrLit(s)
            }
            TokenKind::KwTrue => {
                self.bump();
                ExprKind::BoolLit(true)
            }
            TokenKind::KwFalse => {
                self.bump();
                ExprKind::BoolLit(false)
            }
            TokenKind::KwNull => {
                self.bump();
                ExprKind::Null
            }
            TokenKind::Ident(name) => {
                self.bump();
                ExprKind::Var(name)
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                return Ok(e);
            }
            other => {
                return Err(self.error(format!(
                    "expected an expression, found {}",
                    other.describe()
                )))
            }
        };
        Ok(Expr { kind, span })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Module {
        parse(FileId(0), src).unwrap_or_else(|e| panic!("parse failed: {e}\nsource:\n{src}"))
    }

    fn only_func(m: &Module) -> &FuncDef {
        m.items
            .iter()
            .find_map(|i| match i {
                Item::Func(f) => Some(f),
                _ => None,
            })
            .expect("no function in module")
    }

    #[test]
    fn parses_empty_function() {
        let m = parse_ok("void f(void) { }");
        let f = only_func(&m);
        assert_eq!(f.name, "f");
        assert!(f.params.is_empty());
        assert!(f.body.stmts.is_empty());
    }

    #[test]
    fn parses_struct_and_global() {
        let m = parse_ok("struct point { int x; int y; };\nint origin = 0;\n");
        assert_eq!(m.items.len(), 2);
        assert!(matches!(m.items[0], Item::Struct(_)));
        assert!(matches!(m.items[1], Item::Global(_)));
    }

    #[test]
    fn parses_pointer_types_and_params() {
        let m = parse_ok("int open(const char *path, size_t bufsz) { return 0; }");
        let f = only_func(&m);
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].ty, Type::Char.ptr_to());
        assert_eq!(f.params[1].ty, Type::SizeT);
    }

    #[test]
    fn parses_cursor_idiom() {
        // `*o++ = '_';` from Figure 5 of the paper.
        let m = parse_ok("void f(char *o) { *o++ = '_'; }");
        let f = only_func(&m);
        assert_eq!(f.body.stmts.len(), 1);
        match &f.body.stmts[0].kind {
            StmtKind::Expr(Expr {
                kind: ExprKind::Assign { op: None, lhs, .. },
                ..
            }) => {
                assert!(matches!(lhs.kind, ExprKind::Deref(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_for_loop_from_figure_1a() {
        let src = "int conv(struct bitmap *bm) {\n\
                   int attr = next_attr_from_bitmap(bm);\n\
                   for (attr = next_attr_from_bitmap(bm); attr != -1; attr = \
                   next_attr_from_bitmap(bm)) { use(attr); }\n\
                   return 0; }";
        let m = parse_ok(src);
        let f = only_func(&m);
        assert!(matches!(f.body.stmts[1].kind, StmtKind::For { .. }));
    }

    #[test]
    fn records_preprocessor_guards() {
        let src = "void f(void) {\n\
                   char host = 1;\n\
                   #ifdef USE_ICMP\n\
                   use(host);\n\
                   #endif\n\
                   }";
        let m = parse_ok(src);
        let f = only_func(&m);
        assert!(f.body.stmts[0].guards.is_empty());
        assert_eq!(
            f.body.stmts[1].guards,
            vec![Guard::Defined("USE_ICMP".into())]
        );
    }

    #[test]
    fn else_branch_negates_guard() {
        let src = "void f(void) {\n#ifdef A\nx();\n#else\ny();\n#endif\n}";
        let m = parse_ok(src);
        let f = only_func(&m);
        assert_eq!(f.body.stmts[0].guards, vec![Guard::Defined("A".into())]);
        assert_eq!(f.body.stmts[1].guards, vec![Guard::NotDefined("A".into())]);
    }

    #[test]
    fn parses_unused_attributes() {
        let m = parse_ok("int f(const bool force [[maybe_unused]]) { return 0; }");
        let f = only_func(&m);
        assert!(f.params[0].unused_attr);
        let m = parse_ok("void g(void) { int x [[maybe_unused]] = 3; }");
        let f = only_func(&m);
        match &f.body.stmts[0].kind {
            StmtKind::Decl { unused_attr, .. } => assert!(unused_attr),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_void_cast() {
        let m = parse_ok("void f(int x) { (void)x; }");
        let f = only_func(&m);
        match &f.body.stmts[0].kind {
            StmtKind::Expr(Expr {
                kind: ExprKind::Cast { ty, .. },
                ..
            }) => assert_eq!(*ty, Type::Void),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_member_chains() {
        let m = parse_ok("void f(struct ctx *c) { c->inner.count = c->inner.count + 1; }");
        only_func(&m);
    }

    #[test]
    fn precedence_is_c_like() {
        let m = parse_ok("int f(void) { return 1 + 2 * 3 == 7 && 1 | 0; }");
        let f = only_func(&m);
        // `&&` binds loosest among these; check the root is And.
        match &f.body.stmts[0].kind {
            StmtKind::Return(Some(Expr {
                kind: ExprKind::Binary { op: BinOp::And, .. },
                ..
            })) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_assignment_to_rvalue() {
        assert!(parse(FileId(0), "void f(void) { 1 = 2; }").is_err());
    }

    #[test]
    fn rejects_unbalanced_endif() {
        assert!(parse(FileId(0), "void f(void) { }\n#endif\n").is_err());
    }

    #[test]
    fn parses_prototype() {
        let m = parse_ok("int log_mod_open(char *path, size_t bufsz);");
        assert!(matches!(m.items[0], Item::FuncDecl(_)));
    }

    #[test]
    fn parses_else_if_chain() {
        let m = parse_ok("void f(int x) { if (x) { g(); } else if (x > 1) { h(); } else { } }");
        only_func(&m);
    }

    #[test]
    fn parses_ternary_and_compound_assign() {
        let m = parse_ok("void f(int x) { int y = x ? 1 : 2; y += x; }");
        // `<<=` is not supported; expect an error instead.
        assert!(parse(FileId(0), "void f(int x) { int y = 0; y <<= x; }").is_err());
        only_func(&m);
    }

    #[test]
    fn parses_switch_statement() {
        let m = parse_ok(
            "void f(int x) {\n\
             switch (x) {\n\
             case 1:\n\
             case 2:\n\
               one_or_two();\n\
               break;\n\
             case -3:\n\
               minus_three();\n\
             default:\n\
               other();\n\
             }\n\
             }",
        );
        let f = only_func(&m);
        match &f.body.stmts[0].kind {
            StmtKind::Switch { cases, default, .. } => {
                assert_eq!(cases.len(), 2);
                assert_eq!(cases[0].values, vec![1, 2]);
                assert_eq!(cases[1].values, vec![-3]);
                assert!(default.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_statement_before_first_case() {
        assert!(parse(
            FileId(0),
            "void f(int x) { switch (x) { g(); case 1: h(); } }"
        )
        .is_err());
    }

    #[test]
    fn parses_do_while() {
        let m = parse_ok("void f(int n) { do { n = n - 1; } while (n > 0); }");
        let f = only_func(&m);
        assert!(matches!(f.body.stmts[0].kind, StmtKind::DoWhile { .. }));
    }

    // ----- Error recovery ------------------------------------------------

    fn func_names(m: &Module) -> Vec<&str> {
        m.items
            .iter()
            .filter_map(|i| match i {
                Item::Func(f) => Some(f.name.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn recovery_on_clean_input_matches_strict_parse() {
        let src = "struct p { int x; };\nint g = 1;\nint f(int a) { if (a) { return g; } \
                   return a; }\n";
        let strict = parse(FileId(0), src).unwrap();
        let r = parse_with_recovery(FileId(0), src);
        assert!(r.lex_errors.is_empty());
        assert!(r.diags.is_empty());
        assert_eq!(strict.items.len(), r.module.items.len());
    }

    #[test]
    fn recovery_poisons_one_statement_and_keeps_the_rest() {
        let src = "int f(void) {\n int a = 1;\n int b = $$;\n use(a);\n return a;\n}\n";
        let r = parse_with_recovery(FileId(0), src);
        assert_eq!(func_names(&r.module), vec!["f"]);
        let Item::Func(f) = &r.module.items[0] else {
            panic!("expected a function");
        };
        // a-decl, poisoned region, use(a), return — the bad decl is replaced.
        assert_eq!(f.body.poisoned_count(), 1);
        assert_eq!(f.body.stmts.len(), 4);
        assert!(matches!(f.body.stmts[1].kind, StmtKind::Error));
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].function.as_deref(), Some("f"));
        assert!(!r.diags[0].dropped_item);
    }

    #[test]
    fn recovery_drops_only_the_mangled_item() {
        let src = "int ok_before(void) { return 1; }\n\
                   garbled mangled_fn(int a, int b) { return a + b; }\n\
                   int ok_after(void) { return 2; }\n";
        let r = parse_with_recovery(FileId(0), src);
        assert_eq!(func_names(&r.module), vec!["ok_before", "ok_after"]);
        assert_eq!(r.diags.len(), 1);
        assert!(r.diags[0].dropped_item);
        assert_eq!(r.diags[0].function.as_deref(), Some("mangled_fn"));
    }

    #[test]
    fn recovery_truncated_file_drops_only_the_last_function() {
        let src = "int ok(void) { return 1; }\nint broken(void) { int x = 1;\n";
        let r = parse_with_recovery(FileId(0), src);
        assert_eq!(func_names(&r.module), vec!["ok"]);
        assert_eq!(r.diags.len(), 1);
        assert!(r.diags[0].dropped_item);
        assert_eq!(r.diags[0].function.as_deref(), Some("broken"));
    }

    #[test]
    fn recovery_survives_unterminated_string() {
        let src = "void f(void) {\n log(\"oops;\n int keep = 1;\n use(keep);\n}\n";
        let r = parse_with_recovery(FileId(0), src);
        assert_eq!(func_names(&r.module), vec!["f"]);
        assert_eq!(r.lex_errors.len(), 1);
        let Item::Func(f) = &r.module.items[0] else {
            panic!("expected a function");
        };
        assert!(f.body.poisoned_count() >= 1);
        // Recovery synchronizes at the first `;` after the bad string, so
        // the statement following that survives.
        assert!(f
            .body
            .stmts
            .iter()
            .any(|s| matches!(&s.kind, StmtKind::Expr(Expr {
            kind: ExprKind::Call { callee, .. },
            ..
        }) if callee == "use")));
    }

    #[test]
    fn recovery_keeps_guard_attribution_after_poisoned_region() {
        let src = "void f(void) {\n int a = $$;\n#ifdef A\n use(a);\n#endif\n}\n";
        let r = parse_with_recovery(FileId(0), src);
        let Item::Func(f) = &r.module.items[0] else {
            panic!("expected a function");
        };
        let guarded = f
            .body
            .stmts
            .iter()
            .find(|s| matches!(s.kind, StmtKind::Expr(_)))
            .expect("use(a) survives");
        assert_eq!(guarded.guards, vec![Guard::Defined("A".into())]);
    }

    #[test]
    fn recovery_collects_multiple_errors_in_one_file() {
        let src = "int f(void) { int a = $$; return a; }\n\
                   garbled g_fn(void) { return 1; }\n\
                   int h(void) { int b = $$; return b; }\n";
        let r = parse_with_recovery(FileId(0), src);
        assert_eq!(func_names(&r.module), vec!["f", "h"]);
        assert_eq!(r.diags.len(), 3);
        assert_eq!(r.diags.iter().filter(|d| d.dropped_item).count(), 1);
    }

    #[test]
    fn recovery_of_whole_garbage_file_yields_empty_module() {
        let r = parse_with_recovery(FileId(0), "@@ %% ?? garbage ## $$\n");
        assert!(r.module.items.is_empty());
        assert!(!r.lex_errors.is_empty() || !r.diags.is_empty());
    }

    #[test]
    fn parses_array_declarations() {
        let m = parse_ok("void f(void) { char host[10] = \"127.0.0.1\"; host[0] = 'x'; }");
        let f = only_func(&m);
        match &f.body.stmts[0].kind {
            StmtKind::Decl { ty, .. } => {
                assert_eq!(*ty, Type::Array(Box::new(Type::Char), 10));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
