//! Recursive-descent parser for MiniC.
//!
//! The grammar is a C subset rich enough to express every code pattern the
//! paper discusses: struct field writes, pointer/cursor idioms (`*o++ = c`),
//! ignored return values, `(void)` casts, `unused` attributes, and
//! preprocessor-guarded statements.

use crate::{
    ast::{
        BinOp,
        Block,
        Expr,
        ExprKind,
        FieldDef,
        FuncDecl,
        FuncDef,
        GlobalDef,
        Guard,
        Item,
        Module,
        Param,
        Stmt,
        StmtKind,
        StructDef,
        SwitchCase,
        UnOp, //
    },
    lexer::lex,
    span::{
        FileId,
        Span, //
    },
    token::{
        Token,
        TokenKind, //
    },
    types::Type,
};

/// An error produced while parsing.
#[derive(Clone, Debug)]
pub struct ParseError {
    /// Explanation of what went wrong.
    pub message: String,
    /// Where it went wrong.
    pub span: Span,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::lexer::LexError> for ParseError {
    fn from(e: crate::lexer::LexError) -> Self {
        ParseError {
            message: e.message,
            span: e.span,
        }
    }
}

/// Parses one source file into a [`Module`].
///
/// # Examples
///
/// ```
/// use vc_ir::{parser::parse, span::FileId};
/// let m = parse(FileId(0), "int main(void) { return 0; }").unwrap();
/// assert_eq!(m.items.len(), 1);
/// ```
pub fn parse(file: FileId, src: &str) -> Result<Module, ParseError> {
    let tokens = lex(file, src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        guards: Vec::new(),
    };
    p.module()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    guards: Vec<Guard>,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        let idx = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, ParseError> {
        if self.peek() == &kind {
            Ok(self.bump())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let sp = self.span();
                self.bump();
                Ok((name, sp))
            }
            other => Err(self.error(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            span: self.span(),
        }
    }

    /// Consumes any preprocessor directives at the current position,
    /// updating the guard stack. Returns an error on unbalanced `#endif`.
    fn drain_directives(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek().clone() {
                TokenKind::HashIf(sym) => {
                    self.bump();
                    self.guards.push(Guard::Defined(sym));
                }
                TokenKind::HashIfNot(sym) => {
                    self.bump();
                    self.guards.push(Guard::NotDefined(sym));
                }
                TokenKind::HashElse => {
                    self.bump();
                    let top = self
                        .guards
                        .pop()
                        .ok_or_else(|| self.error("#else without matching #if"))?;
                    self.guards.push(top.negate());
                }
                TokenKind::HashEndif => {
                    self.bump();
                    self.guards
                        .pop()
                        .ok_or_else(|| self.error("#endif without matching #if"))?;
                }
                _ => return Ok(()),
            }
        }
    }

    // ----- Items --------------------------------------------------------

    fn module(&mut self) -> Result<Module, ParseError> {
        let mut items = Vec::new();
        loop {
            self.drain_directives()?;
            if matches!(self.peek(), TokenKind::Eof) {
                if !self.guards.is_empty() {
                    return Err(self.error("unterminated #if at end of file"));
                }
                return Ok(Module { items });
            }
            items.push(self.item()?);
        }
    }

    fn item(&mut self) -> Result<Item, ParseError> {
        if matches!(self.peek(), TokenKind::KwStruct)
            && matches!(self.peek_at(1), TokenKind::Ident(_))
            && matches!(self.peek_at(2), TokenKind::LBrace)
        {
            return Ok(Item::Struct(self.struct_def()?));
        }
        let is_static = self.eat(&TokenKind::KwStatic);
        let ty = self.parse_type()?;
        let (name, name_span) = self.expect_ident()?;
        if matches!(self.peek(), TokenKind::LParen) {
            self.function_tail(is_static, ty, name, name_span)
        } else {
            // Global variable.
            let ty = self.array_suffix(ty)?;
            let init = if self.eat(&TokenKind::Eq) {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect(TokenKind::Semi)?;
            Ok(Item::Global(GlobalDef {
                name,
                ty,
                init,
                span: name_span,
            }))
        }
    }

    fn struct_def(&mut self) -> Result<StructDef, ParseError> {
        let start = self.span();
        self.expect(TokenKind::KwStruct)?;
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            let ty = self.parse_type()?;
            let (fname, fspan) = self.expect_ident()?;
            let ty = self.array_suffix(ty)?;
            self.expect(TokenKind::Semi)?;
            fields.push(FieldDef {
                name: fname,
                ty,
                span: fspan,
            });
        }
        self.expect(TokenKind::Semi)?;
        Ok(StructDef {
            name,
            fields,
            span: start.to(self.prev_span()),
        })
    }

    fn function_tail(
        &mut self,
        is_static: bool,
        ret: Type,
        name: String,
        span: Span,
    ) -> Result<Item, ParseError> {
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            if matches!(self.peek(), TokenKind::KwVoid)
                && matches!(self.peek_at(1), TokenKind::RParen)
            {
                self.bump();
                self.bump();
            } else {
                loop {
                    params.push(self.param()?);
                    if !self.eat(&TokenKind::Comma) {
                        self.expect(TokenKind::RParen)?;
                        break;
                    }
                }
            }
        }
        if self.eat(&TokenKind::Semi) {
            return Ok(Item::FuncDecl(FuncDecl {
                name,
                ret,
                params,
                span,
            }));
        }
        let body = self.block()?;
        Ok(Item::Func(FuncDef {
            name,
            ret,
            params,
            body,
            is_static,
            span,
        }))
    }

    fn param(&mut self) -> Result<Param, ParseError> {
        let mut unused_attr = self.eat(&TokenKind::AttrUnused);
        let ty = self.parse_type()?;
        unused_attr |= self.eat(&TokenKind::AttrUnused);
        let (name, span) = self.expect_ident()?;
        unused_attr |= self.eat(&TokenKind::AttrUnused);
        let ty = self.array_suffix(ty)?;
        Ok(Param {
            name,
            ty,
            unused_attr,
            span,
        })
    }

    // ----- Types --------------------------------------------------------

    fn at_type_start(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::KwInt
                | TokenKind::KwUnsigned
                | TokenKind::KwLong
                | TokenKind::KwChar
                | TokenKind::KwBool
                | TokenKind::KwVoid
                | TokenKind::KwSizeT
                | TokenKind::KwStruct
                | TokenKind::KwConst
        )
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        self.eat(&TokenKind::KwConst);
        let mut ty = match self.peek().clone() {
            TokenKind::KwInt => {
                self.bump();
                Type::Int
            }
            TokenKind::KwUnsigned => {
                self.bump();
                self.eat(&TokenKind::KwInt);
                Type::Uint
            }
            TokenKind::KwLong => {
                self.bump();
                self.eat(&TokenKind::KwLong);
                self.eat(&TokenKind::KwInt);
                Type::Long
            }
            TokenKind::KwChar => {
                self.bump();
                Type::Char
            }
            TokenKind::KwBool => {
                self.bump();
                Type::Bool
            }
            TokenKind::KwVoid => {
                self.bump();
                Type::Void
            }
            TokenKind::KwSizeT => {
                self.bump();
                Type::SizeT
            }
            TokenKind::KwStruct => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                Type::Struct(name)
            }
            other => return Err(self.error(format!("expected a type, found {}", other.describe()))),
        };
        self.eat(&TokenKind::KwConst);
        while self.eat(&TokenKind::Star) {
            self.eat(&TokenKind::KwConst);
            ty = ty.ptr_to();
        }
        Ok(ty)
    }

    fn array_suffix(&mut self, ty: Type) -> Result<Type, ParseError> {
        if self.eat(&TokenKind::LBracket) {
            let n = match self.peek().clone() {
                TokenKind::Int(v) if v >= 0 => {
                    self.bump();
                    v as usize
                }
                other => {
                    return Err(
                        self.error(format!("expected array length, found {}", other.describe()))
                    )
                }
            };
            self.expect(TokenKind::RBracket)?;
            Ok(Type::Array(Box::new(ty), n))
        } else {
            Ok(ty)
        }
    }

    // ----- Statements ---------------------------------------------------

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect(TokenKind::LBrace)?;
        let depth = self.guards.len();
        let mut stmts = Vec::new();
        loop {
            self.drain_directives()?;
            if self.eat(&TokenKind::RBrace) {
                if self.guards.len() != depth {
                    return Err(self.error("#if not terminated before end of block"));
                }
                return Ok(Block { stmts });
            }
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(self.error("unexpected end of input inside block"));
            }
            stmts.push(self.stmt()?);
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let guards = self.guards.clone();
        let start = self.span();
        let kind = self.stmt_kind()?;
        Ok(Stmt {
            kind,
            span: start.to(self.prev_span()),
            guards,
        })
    }

    fn stmt_kind(&mut self) -> Result<StmtKind, ParseError> {
        match self.peek().clone() {
            TokenKind::LBrace => Ok(StmtKind::Block(self.block()?)),
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::KwWhile => self.while_stmt(),
            TokenKind::KwDo => self.do_while_stmt(),
            TokenKind::KwSwitch => self.switch_stmt(),
            TokenKind::KwFor => self.for_stmt(),
            TokenKind::KwReturn => {
                self.bump();
                let value = if matches!(self.peek(), TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                Ok(StmtKind::Return(value))
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(StmtKind::Break)
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(StmtKind::Continue)
            }
            TokenKind::AttrUnused => {
                self.bump();
                let mut kind = self.decl_stmt()?;
                if let StmtKind::Decl { unused_attr, .. } = &mut kind {
                    *unused_attr = true;
                }
                Ok(kind)
            }
            TokenKind::KwStatic => {
                self.bump();
                self.decl_stmt()
            }
            _ if self.at_type_start() => self.decl_stmt(),
            _ => {
                let e = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(StmtKind::Expr(e))
            }
        }
    }

    fn decl_stmt(&mut self) -> Result<StmtKind, ParseError> {
        let ty = self.parse_type()?;
        let mut unused_attr = self.eat(&TokenKind::AttrUnused);
        let (name, _) = self.expect_ident()?;
        unused_attr |= self.eat(&TokenKind::AttrUnused);
        let ty = self.array_suffix(ty)?;
        let init = if self.eat(&TokenKind::Eq) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(TokenKind::Semi)?;
        Ok(StmtKind::Decl {
            name,
            ty,
            init,
            unused_attr,
        })
    }

    fn if_stmt(&mut self) -> Result<StmtKind, ParseError> {
        self.expect(TokenKind::KwIf)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let then = self.block_or_single()?;
        let els = if self.eat(&TokenKind::KwElse) {
            if matches!(self.peek(), TokenKind::KwIf) {
                // `else if` chains become a nested single-statement block.
                let nested = self.stmt()?;
                Some(Block {
                    stmts: vec![nested],
                })
            } else {
                Some(self.block_or_single()?)
            }
        } else {
            None
        };
        Ok(StmtKind::If { cond, then, els })
    }

    fn while_stmt(&mut self) -> Result<StmtKind, ParseError> {
        self.expect(TokenKind::KwWhile)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let body = self.block_or_single()?;
        Ok(StmtKind::While { cond, body })
    }

    fn do_while_stmt(&mut self) -> Result<StmtKind, ParseError> {
        self.expect(TokenKind::KwDo)?;
        let body = self.block_or_single()?;
        self.expect(TokenKind::KwWhile)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::Semi)?;
        Ok(StmtKind::DoWhile { body, cond })
    }

    fn switch_stmt(&mut self) -> Result<StmtKind, ParseError> {
        self.expect(TokenKind::KwSwitch)?;
        self.expect(TokenKind::LParen)?;
        let scrutinee = self.expr()?;
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::LBrace)?;
        let mut cases: Vec<SwitchCase> = Vec::new();
        let mut default: Option<Block> = None;
        let mut pending_values: Vec<i64> = Vec::new();
        loop {
            self.drain_directives()?;
            if self.eat(&TokenKind::RBrace) {
                if !pending_values.is_empty() {
                    // Trailing labels with an empty body select nothing.
                    cases.push(SwitchCase {
                        values: std::mem::take(&mut pending_values),
                        body: Block::default(),
                    });
                }
                break;
            }
            if self.eat(&TokenKind::KwCase) {
                let negative = self.eat(&TokenKind::Minus);
                let value = match self.peek().clone() {
                    TokenKind::Int(v) => {
                        self.bump();
                        if negative {
                            -v
                        } else {
                            v
                        }
                    }
                    other => {
                        return Err(self.error(format!(
                            "expected a constant case label, found {}",
                            other.describe()
                        )))
                    }
                };
                self.expect(TokenKind::Colon)?;
                pending_values.push(value);
                continue;
            }
            if self.eat(&TokenKind::KwDefault) {
                self.expect(TokenKind::Colon)?;
                let body = self.case_body()?;
                if default.is_some() {
                    return Err(self.error("duplicate default label"));
                }
                if !pending_values.is_empty() {
                    // `case 1: default:` — the stacked labels share the body.
                    cases.push(SwitchCase {
                        values: std::mem::take(&mut pending_values),
                        body: body.clone(),
                    });
                }
                default = Some(body);
                continue;
            }
            if pending_values.is_empty() {
                return Err(self.error("statement before the first case label"));
            }
            let body = self.case_body()?;
            cases.push(SwitchCase {
                values: std::mem::take(&mut pending_values),
                body,
            });
        }
        Ok(StmtKind::Switch {
            scrutinee,
            cases,
            default,
        })
    }

    /// Statements of one switch arm, up to the next label or closing brace.
    /// A trailing `break;` is consumed and dropped (arms never fall through).
    fn case_body(&mut self) -> Result<Block, ParseError> {
        let mut stmts = Vec::new();
        loop {
            self.drain_directives()?;
            match self.peek() {
                TokenKind::KwCase | TokenKind::KwDefault | TokenKind::RBrace => break,
                TokenKind::KwBreak => {
                    self.bump();
                    self.expect(TokenKind::Semi)?;
                    break;
                }
                TokenKind::Eof => return Err(self.error("unexpected end of input in switch")),
                _ => stmts.push(self.stmt()?),
            }
        }
        Ok(Block { stmts })
    }

    fn for_stmt(&mut self) -> Result<StmtKind, ParseError> {
        self.expect(TokenKind::KwFor)?;
        self.expect(TokenKind::LParen)?;
        let init = if self.eat(&TokenKind::Semi) {
            None
        } else {
            let guards = self.guards.clone();
            let start = self.span();
            let kind = if self.at_type_start() {
                self.decl_stmt()?
            } else {
                let e = self.expr()?;
                self.expect(TokenKind::Semi)?;
                StmtKind::Expr(e)
            };
            Some(Box::new(Stmt {
                kind,
                span: start.to(self.prev_span()),
                guards,
            }))
        };
        let cond = if matches!(self.peek(), TokenKind::Semi) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(TokenKind::Semi)?;
        let step = if matches!(self.peek(), TokenKind::RParen) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(TokenKind::RParen)?;
        let body = self.block_or_single()?;
        Ok(StmtKind::For {
            init,
            cond,
            step,
            body,
        })
    }

    /// A block, or a single statement wrapped in a block (brace-less bodies).
    fn block_or_single(&mut self) -> Result<Block, ParseError> {
        if matches!(self.peek(), TokenKind::LBrace) {
            self.block()
        } else {
            let stmt = self.stmt()?;
            Ok(Block { stmts: vec![stmt] })
        }
    }

    // ----- Expressions --------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.assign_expr()
    }

    fn assign_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.ternary_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => None,
            TokenKind::PlusEq => Some(BinOp::Add),
            TokenKind::MinusEq => Some(BinOp::Sub),
            TokenKind::StarEq => Some(BinOp::Mul),
            TokenKind::SlashEq => Some(BinOp::Div),
            TokenKind::PercentEq => Some(BinOp::Rem),
            TokenKind::AmpEq => Some(BinOp::BitAnd),
            TokenKind::PipeEq => Some(BinOp::BitOr),
            TokenKind::CaretEq => Some(BinOp::BitXor),
            _ => return Ok(lhs),
        };
        if !lhs.is_lvalue() {
            return Err(self.error("left-hand side of assignment is not an lvalue"));
        }
        self.bump();
        let rhs = self.assign_expr()?;
        let span = lhs.span.to(rhs.span);
        Ok(Expr {
            kind: ExprKind::Assign {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            span,
        })
    }

    fn ternary_expr(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary_expr(0)?;
        if !self.eat(&TokenKind::Question) {
            return Ok(cond);
        }
        let then = self.expr()?;
        self.expect(TokenKind::Colon)?;
        let els = self.ternary_expr()?;
        let span = cond.span.to(els.span);
        Ok(Expr {
            kind: ExprKind::Ternary {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
            },
            span,
        })
    }

    fn binop_at(&self, level: usize) -> Option<BinOp> {
        // Precedence levels from lowest to highest.
        let op = match (level, self.peek()) {
            (0, TokenKind::PipePipe) => BinOp::Or,
            (1, TokenKind::AmpAmp) => BinOp::And,
            (2, TokenKind::Pipe) => BinOp::BitOr,
            (3, TokenKind::Caret) => BinOp::BitXor,
            (4, TokenKind::Amp) => BinOp::BitAnd,
            (5, TokenKind::EqEq) => BinOp::Eq,
            (5, TokenKind::BangEq) => BinOp::Ne,
            (6, TokenKind::Lt) => BinOp::Lt,
            (6, TokenKind::LtEq) => BinOp::Le,
            (6, TokenKind::Gt) => BinOp::Gt,
            (6, TokenKind::GtEq) => BinOp::Ge,
            (7, TokenKind::Shl) => BinOp::Shl,
            (7, TokenKind::Shr) => BinOp::Shr,
            (8, TokenKind::Plus) => BinOp::Add,
            (8, TokenKind::Minus) => BinOp::Sub,
            (9, TokenKind::Star) => BinOp::Mul,
            (9, TokenKind::Slash) => BinOp::Div,
            (9, TokenKind::Percent) => BinOp::Rem,
            _ => return None,
        };
        Some(op)
    }

    fn binary_expr(&mut self, level: usize) -> Result<Expr, ParseError> {
        const TOP: usize = 10;
        if level >= TOP {
            return self.unary_expr();
        }
        let mut lhs = self.binary_expr(level + 1)?;
        while let Some(op) = self.binop_at(level) {
            self.bump();
            let rhs = self.binary_expr(level + 1)?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        let kind = match self.peek().clone() {
            TokenKind::Minus => {
                self.bump();
                let e = self.unary_expr()?;
                ExprKind::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(e),
                }
            }
            TokenKind::Bang => {
                self.bump();
                let e = self.unary_expr()?;
                ExprKind::Unary {
                    op: UnOp::Not,
                    expr: Box::new(e),
                }
            }
            TokenKind::Tilde => {
                self.bump();
                let e = self.unary_expr()?;
                ExprKind::Unary {
                    op: UnOp::BitNot,
                    expr: Box::new(e),
                }
            }
            TokenKind::Star => {
                self.bump();
                let e = self.unary_expr()?;
                ExprKind::Deref(Box::new(e))
            }
            TokenKind::Amp => {
                self.bump();
                let e = self.unary_expr()?;
                ExprKind::AddrOf(Box::new(e))
            }
            TokenKind::PlusPlus => {
                self.bump();
                let e = self.unary_expr()?;
                ExprKind::IncDec {
                    delta: 1,
                    pre: true,
                    target: Box::new(e),
                }
            }
            TokenKind::MinusMinus => {
                self.bump();
                let e = self.unary_expr()?;
                ExprKind::IncDec {
                    delta: -1,
                    pre: true,
                    target: Box::new(e),
                }
            }
            TokenKind::LParen if self.type_cast_ahead() => {
                self.bump();
                let ty = self.parse_type()?;
                self.expect(TokenKind::RParen)?;
                let e = self.unary_expr()?;
                ExprKind::Cast {
                    ty,
                    expr: Box::new(e),
                }
            }
            _ => return self.postfix_expr(),
        };
        Ok(Expr {
            kind,
            span: start.to(self.prev_span()),
        })
    }

    /// True when `(` begins a cast, i.e. the next token starts a type.
    fn type_cast_ahead(&self) -> bool {
        matches!(
            self.peek_at(1),
            TokenKind::KwInt
                | TokenKind::KwUnsigned
                | TokenKind::KwLong
                | TokenKind::KwChar
                | TokenKind::KwBool
                | TokenKind::KwVoid
                | TokenKind::KwSizeT
                | TokenKind::KwStruct
                | TokenKind::KwConst
        )
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek().clone() {
                TokenKind::LParen => {
                    let callee = match &e.kind {
                        ExprKind::Var(name) => name.clone(),
                        _ => {
                            return Err(self.error(
                                "calls are only supported through a named callee or pointer \
                                 variable",
                            ))
                        }
                    };
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                self.expect(TokenKind::RParen)?;
                                break;
                            }
                        }
                    }
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        kind: ExprKind::Call { callee, args },
                        span,
                    };
                }
                TokenKind::LBracket => {
                    self.bump();
                    let index = self.expr()?;
                    self.expect(TokenKind::RBracket)?;
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        kind: ExprKind::Index {
                            base: Box::new(e),
                            index: Box::new(index),
                        },
                        span,
                    };
                }
                TokenKind::Dot | TokenKind::Arrow => {
                    let arrow = matches!(self.peek(), TokenKind::Arrow);
                    self.bump();
                    let (field, fspan) = self.expect_ident()?;
                    let span = e.span.to(fspan);
                    e = Expr {
                        kind: ExprKind::Member {
                            base: Box::new(e),
                            field,
                            arrow,
                        },
                        span,
                    };
                }
                TokenKind::PlusPlus | TokenKind::MinusMinus => {
                    let delta = if matches!(self.peek(), TokenKind::PlusPlus) {
                        1
                    } else {
                        -1
                    };
                    self.bump();
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        kind: ExprKind::IncDec {
                            delta,
                            pre: false,
                            target: Box::new(e),
                        },
                        span,
                    };
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        let span = self.span();
        let kind = match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                ExprKind::IntLit(v)
            }
            TokenKind::Str(s) => {
                self.bump();
                ExprKind::StrLit(s)
            }
            TokenKind::KwTrue => {
                self.bump();
                ExprKind::BoolLit(true)
            }
            TokenKind::KwFalse => {
                self.bump();
                ExprKind::BoolLit(false)
            }
            TokenKind::KwNull => {
                self.bump();
                ExprKind::Null
            }
            TokenKind::Ident(name) => {
                self.bump();
                ExprKind::Var(name)
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                return Ok(e);
            }
            other => {
                return Err(self.error(format!(
                    "expected an expression, found {}",
                    other.describe()
                )))
            }
        };
        Ok(Expr { kind, span })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Module {
        parse(FileId(0), src).unwrap_or_else(|e| panic!("parse failed: {e}\nsource:\n{src}"))
    }

    fn only_func(m: &Module) -> &FuncDef {
        m.items
            .iter()
            .find_map(|i| match i {
                Item::Func(f) => Some(f),
                _ => None,
            })
            .expect("no function in module")
    }

    #[test]
    fn parses_empty_function() {
        let m = parse_ok("void f(void) { }");
        let f = only_func(&m);
        assert_eq!(f.name, "f");
        assert!(f.params.is_empty());
        assert!(f.body.stmts.is_empty());
    }

    #[test]
    fn parses_struct_and_global() {
        let m = parse_ok("struct point { int x; int y; };\nint origin = 0;\n");
        assert_eq!(m.items.len(), 2);
        assert!(matches!(m.items[0], Item::Struct(_)));
        assert!(matches!(m.items[1], Item::Global(_)));
    }

    #[test]
    fn parses_pointer_types_and_params() {
        let m = parse_ok("int open(const char *path, size_t bufsz) { return 0; }");
        let f = only_func(&m);
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].ty, Type::Char.ptr_to());
        assert_eq!(f.params[1].ty, Type::SizeT);
    }

    #[test]
    fn parses_cursor_idiom() {
        // `*o++ = '_';` from Figure 5 of the paper.
        let m = parse_ok("void f(char *o) { *o++ = '_'; }");
        let f = only_func(&m);
        assert_eq!(f.body.stmts.len(), 1);
        match &f.body.stmts[0].kind {
            StmtKind::Expr(Expr {
                kind: ExprKind::Assign { op: None, lhs, .. },
                ..
            }) => {
                assert!(matches!(lhs.kind, ExprKind::Deref(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_for_loop_from_figure_1a() {
        let src = "int conv(struct bitmap *bm) {\n\
                   int attr = next_attr_from_bitmap(bm);\n\
                   for (attr = next_attr_from_bitmap(bm); attr != -1; attr = \
                   next_attr_from_bitmap(bm)) { use(attr); }\n\
                   return 0; }";
        let m = parse_ok(src);
        let f = only_func(&m);
        assert!(matches!(f.body.stmts[1].kind, StmtKind::For { .. }));
    }

    #[test]
    fn records_preprocessor_guards() {
        let src = "void f(void) {\n\
                   char host = 1;\n\
                   #ifdef USE_ICMP\n\
                   use(host);\n\
                   #endif\n\
                   }";
        let m = parse_ok(src);
        let f = only_func(&m);
        assert!(f.body.stmts[0].guards.is_empty());
        assert_eq!(
            f.body.stmts[1].guards,
            vec![Guard::Defined("USE_ICMP".into())]
        );
    }

    #[test]
    fn else_branch_negates_guard() {
        let src = "void f(void) {\n#ifdef A\nx();\n#else\ny();\n#endif\n}";
        let m = parse_ok(src);
        let f = only_func(&m);
        assert_eq!(f.body.stmts[0].guards, vec![Guard::Defined("A".into())]);
        assert_eq!(f.body.stmts[1].guards, vec![Guard::NotDefined("A".into())]);
    }

    #[test]
    fn parses_unused_attributes() {
        let m = parse_ok("int f(const bool force [[maybe_unused]]) { return 0; }");
        let f = only_func(&m);
        assert!(f.params[0].unused_attr);
        let m = parse_ok("void g(void) { int x [[maybe_unused]] = 3; }");
        let f = only_func(&m);
        match &f.body.stmts[0].kind {
            StmtKind::Decl { unused_attr, .. } => assert!(unused_attr),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_void_cast() {
        let m = parse_ok("void f(int x) { (void)x; }");
        let f = only_func(&m);
        match &f.body.stmts[0].kind {
            StmtKind::Expr(Expr {
                kind: ExprKind::Cast { ty, .. },
                ..
            }) => assert_eq!(*ty, Type::Void),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_member_chains() {
        let m = parse_ok("void f(struct ctx *c) { c->inner.count = c->inner.count + 1; }");
        only_func(&m);
    }

    #[test]
    fn precedence_is_c_like() {
        let m = parse_ok("int f(void) { return 1 + 2 * 3 == 7 && 1 | 0; }");
        let f = only_func(&m);
        // `&&` binds loosest among these; check the root is And.
        match &f.body.stmts[0].kind {
            StmtKind::Return(Some(Expr {
                kind: ExprKind::Binary { op: BinOp::And, .. },
                ..
            })) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_assignment_to_rvalue() {
        assert!(parse(FileId(0), "void f(void) { 1 = 2; }").is_err());
    }

    #[test]
    fn rejects_unbalanced_endif() {
        assert!(parse(FileId(0), "void f(void) { }\n#endif\n").is_err());
    }

    #[test]
    fn parses_prototype() {
        let m = parse_ok("int log_mod_open(char *path, size_t bufsz);");
        assert!(matches!(m.items[0], Item::FuncDecl(_)));
    }

    #[test]
    fn parses_else_if_chain() {
        let m = parse_ok("void f(int x) { if (x) { g(); } else if (x > 1) { h(); } else { } }");
        only_func(&m);
    }

    #[test]
    fn parses_ternary_and_compound_assign() {
        let m = parse_ok("void f(int x) { int y = x ? 1 : 2; y += x; }");
        // `<<=` is not supported; expect an error instead.
        assert!(parse(FileId(0), "void f(int x) { int y = 0; y <<= x; }").is_err());
        only_func(&m);
    }

    #[test]
    fn parses_switch_statement() {
        let m = parse_ok(
            "void f(int x) {\n\
             switch (x) {\n\
             case 1:\n\
             case 2:\n\
               one_or_two();\n\
               break;\n\
             case -3:\n\
               minus_three();\n\
             default:\n\
               other();\n\
             }\n\
             }",
        );
        let f = only_func(&m);
        match &f.body.stmts[0].kind {
            StmtKind::Switch { cases, default, .. } => {
                assert_eq!(cases.len(), 2);
                assert_eq!(cases[0].values, vec![1, 2]);
                assert_eq!(cases[1].values, vec![-3]);
                assert!(default.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_statement_before_first_case() {
        assert!(parse(
            FileId(0),
            "void f(int x) { switch (x) { g(); case 1: h(); } }"
        )
        .is_err());
    }

    #[test]
    fn parses_do_while() {
        let m = parse_ok("void f(int n) { do { n = n - 1; } while (n > 0); }");
        let f = only_func(&m);
        assert!(matches!(f.body.stmts[0].kind, StmtKind::DoWhile { .. }));
    }

    #[test]
    fn parses_array_declarations() {
        let m = parse_ok("void f(void) { char host[10] = \"127.0.0.1\"; host[0] = 'x'; }");
        let f = only_func(&m);
        match &f.body.stmts[0].kind {
            StmtKind::Decl { ty, .. } => {
                assert_eq!(*ty, Type::Array(Box::new(Type::Char), 10));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
