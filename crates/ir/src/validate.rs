//! Structural validation of lowered IR.
//!
//! Validation is cheap and run by the workload generator on every generated
//! program, so malformed IR is caught at generation time instead of deep in
//! an analysis pass.

use crate::ir::{
    BlockId,
    Callee,
    Function,
    Inst,
    Operand,
    Place,
    TempId,
    Terminator, //
};

/// A violated IR invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidateError {
    /// The offending function.
    pub func: String,
    /// Description of the violation.
    pub message: String,
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "IR validation failed in `{}`: {}",
            self.func, self.message
        )
    }
}

impl std::error::Error for ValidateError {}

/// Validates one function. Checks:
///
/// - every branch target is a valid block id;
/// - every temp is defined exactly once, before any use in instruction order
///   along the block layout (lowering emits temps in order);
/// - every local referenced by a place exists;
/// - the temp-origin table covers every temp.
pub fn validate_function(f: &Function) -> Result<(), ValidateError> {
    let err = |message: String| ValidateError {
        func: f.name.clone(),
        message,
    };

    let nblocks = f.blocks.len();
    if (f.entry.0 as usize) >= nblocks {
        return Err(err(format!("entry block {:?} out of range", f.entry)));
    }

    let check_block = |b: BlockId| -> Result<(), ValidateError> {
        if (b.0 as usize) >= nblocks {
            return Err(err(format!("branch target {b:?} out of range")));
        }
        Ok(())
    };

    let ntemps = f.temp_origins.len();
    let mut defined = vec![false; ntemps];
    // Parameter temps are function inputs, defined implicitly at entry.
    for (i, origin) in f.temp_origins.iter().enumerate() {
        if matches!(origin, crate::ir::TempOrigin::Param(_)) {
            defined[i] = true;
        }
    }
    let check_temp_use = |t: TempId, defined: &[bool]| -> Result<(), ValidateError> {
        if (t.0 as usize) >= ntemps {
            return Err(err(format!("temp {t:?} out of origin-table range")));
        }
        if !defined[t.0 as usize] {
            return Err(err(format!("temp {t:?} used before definition")));
        }
        Ok(())
    };
    let check_operand = |o: &Operand, defined: &[bool]| -> Result<(), ValidateError> {
        if let Operand::Temp(t) = o {
            check_temp_use(*t, defined)?;
        }
        Ok(())
    };
    let check_def = |t: TempId| -> Result<usize, ValidateError> {
        let i = t.0 as usize;
        if i >= ntemps {
            return Err(err(format!("temp {t:?} missing from origin table")));
        }
        Ok(i)
    };
    let nlocals = f.locals.len();
    let check_place = |p: &Place, defined: &[bool]| -> Result<(), ValidateError> {
        match p {
            Place::Local(l) | Place::Field(l, _) => {
                if (l.0 as usize) >= nlocals {
                    return Err(err(format!("local {l:?} out of range")));
                }
            }
            Place::Deref(t) | Place::DerefField(t, _) => check_temp_use(*t, defined)?,
            Place::Global(_) | Place::GlobalField(_, _) => {}
        }
        Ok(())
    };

    // Temps are numbered in emission order, so a linear scan over blocks in
    // id order observes each definition before its (dominated) uses.
    for bb in &f.blocks {
        for inst in &bb.insts {
            match inst {
                Inst::Load { dst, place, .. } => {
                    check_place(place, &defined)?;
                    defined[check_def(*dst)?] = true;
                }
                Inst::Store { place, value, .. } => {
                    check_place(place, &defined)?;
                    check_operand(value, &defined)?;
                }
                Inst::Bin { dst, lhs, rhs, .. } => {
                    check_operand(lhs, &defined)?;
                    check_operand(rhs, &defined)?;
                    defined[check_def(*dst)?] = true;
                }
                Inst::Un { dst, operand, .. } => {
                    check_operand(operand, &defined)?;
                    defined[check_def(*dst)?] = true;
                }
                Inst::AddrOf { dst, place, .. } => {
                    check_place(place, &defined)?;
                    defined[check_def(*dst)?] = true;
                }
                Inst::Call {
                    dst, callee, args, ..
                } => {
                    if let Callee::Indirect(t) = callee {
                        check_temp_use(*t, &defined)?;
                    }
                    for a in args {
                        check_operand(a, &defined)?;
                    }
                    if let Some(d) = dst {
                        defined[check_def(*d)?] = true;
                    }
                }
            }
        }
        match &bb.term {
            Terminator::Br(b) => check_block(*b)?,
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                check_operand(cond, &defined)?;
                check_block(*then_bb)?;
                check_block(*else_bb)?;
            }
            Terminator::Ret { value, .. } => {
                if let Some(v) = value {
                    check_operand(v, &defined)?;
                }
            }
            Terminator::Unreachable => {}
        }
    }
    Ok(())
}

/// Validates every function of a program.
pub fn validate_program(prog: &crate::program::Program) -> Result<(), ValidateError> {
    for f in &prog.funcs {
        validate_function(f)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;

    #[test]
    fn lowered_programs_validate() {
        let prog = Program::build(
            &[(
                "a.c",
                "struct s { int a; int b; };\n\
                 int g(int x);\n\
                 int f(struct s *p, int n) {\n\
                   int acc = 0;\n\
                   for (int i = 0; i < n; i = i + 1) { acc = acc + g(i); }\n\
                   p->a = acc;\n\
                   if (acc > 10) { return 1; } else { return 0; }\n\
                 }",
            )],
            &[],
        )
        .unwrap();
        validate_program(&prog).unwrap();
    }

    #[test]
    fn detects_bad_branch_target() {
        let mut prog = Program::build(&[("a.c", "void f(void) { }")], &[]).unwrap();
        prog.funcs[0].blocks[0].term = Terminator::Br(crate::ir::BlockId(99));
        assert!(validate_program(&prog).is_err());
    }

    #[test]
    fn detects_missing_temp_origin() {
        let mut prog = Program::build(&[("a.c", "int f(int x) { return x; }")], &[]).unwrap();
        // Truncate the origin table to invalidate the last temp.
        prog.funcs[0].temp_origins.pop();
        assert!(validate_program(&prog).is_err());
    }
}
