//! # vc-ir — MiniC frontend and load/store IR
//!
//! The compilation substrate for the ValueCheck reproduction. The paper
//! analyses LLVM bitcode compiled with `-O0 -fno-inline`; this crate provides
//! the equivalent: a C-like language (MiniC) lowered to a load/store IR where
//!
//! - every named local occupies a stack slot,
//! - reads are [`ir::Inst::Load`]s and writes are [`ir::Inst::Store`]s,
//! - struct fields of local aggregates are separately addressable
//!   ([`ir::Place::Field`], the paper's `v#n` naming),
//! - parameters are spilled to slots at entry so overwritten arguments are
//!   visible as dead stores,
//! - ignored call results become stores to synthetic slots
//!   (`[tmp] = printf(...)`).
//!
//! The pipeline is [`parser::parse`] → [`program::Program::build`] →
//! per-function [`ir::Function`]s with [`cfg::Cfg`]s.

pub mod ast;
pub mod cfg;
pub mod ir;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod pretty;
pub mod program;
pub mod span;
pub mod testing;
pub mod token;
pub mod types;
pub mod validate;

pub use ir::{
    BlockId,
    FuncId,
    Function,
    LocalId,
    Place,
    StoreInfo,
    TempId,
    VarKey, //
};
pub use program::Program;
pub use span::{
    FileId,
    LineCol,
    Span, //
};
