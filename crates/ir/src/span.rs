//! Source positions and spans.
//!
//! Every AST node and IR instruction carries a [`Span`] so that later phases
//! (authorship lookup, pruning, reporting) can map analysis results back to a
//! file and line. Lines are 1-based, matching the convention of `git blame`.

/// Identifier of a source file within a [`crate::program::SourceMap`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

impl FileId {
    /// A placeholder file id for synthesized code with no source location.
    pub const SYNTHETIC: FileId = FileId(u32::MAX);
}

/// A position in a source file: 1-based line and column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl LineCol {
    /// Creates a new position.
    pub fn new(line: u32, col: u32) -> Self {
        Self { line, col }
    }
}

/// A contiguous region of a single source file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Span {
    /// The file this span belongs to.
    pub file: FileId,
    /// Inclusive start position.
    pub start: LineCol,
    /// Inclusive end position.
    pub end: LineCol,
}

impl Span {
    /// Creates a span covering a single point.
    pub fn point(file: FileId, line: u32, col: u32) -> Self {
        let p = LineCol::new(line, col);
        Self {
            file,
            start: p,
            end: p,
        }
    }

    /// A span with no meaningful location, used for synthesized nodes.
    pub fn synthetic() -> Self {
        Self::point(FileId::SYNTHETIC, 0, 0)
    }

    /// Returns true if this span refers to synthesized code.
    pub fn is_synthetic(&self) -> bool {
        self.file == FileId::SYNTHETIC
    }

    /// Merges two spans into the smallest span covering both.
    ///
    /// Spans from different files cannot be merged meaningfully; in that case
    /// `self` is returned unchanged.
    pub fn to(self, other: Span) -> Span {
        if self.file != other.file {
            return self;
        }
        Span {
            file: self.file,
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// The 1-based line of the start of the span.
    pub fn line(&self) -> u32 {
        self.start.line
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.start.line, self.start.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_orders_positions() {
        let f = FileId(0);
        let a = Span::point(f, 3, 7);
        let b = Span::point(f, 1, 2);
        let m = a.to(b);
        assert_eq!(m.start, LineCol::new(1, 2));
        assert_eq!(m.end, LineCol::new(3, 7));
    }

    #[test]
    fn merge_across_files_keeps_self() {
        let a = Span::point(FileId(0), 1, 1);
        let b = Span::point(FileId(1), 9, 9);
        assert_eq!(a.to(b), a);
    }

    #[test]
    fn synthetic_is_flagged() {
        assert!(Span::synthetic().is_synthetic());
        assert!(!Span::point(FileId(2), 1, 1).is_synthetic());
    }
}
