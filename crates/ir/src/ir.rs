//! The load/store intermediate representation.
//!
//! The IR mirrors what the paper's algorithm (Fig. 4) consumes from LLVM
//! bitcode compiled at `-O0 -fno-inline`: every named local lives in a stack
//! slot, reads are `Load`s, writes are `Store`s, and struct fields of local
//! aggregates are separately-addressable `Field` places so the liveness
//! analysis can be field-sensitive.

use crate::{
    ast::BinOp,
    span::{
        FileId,
        Span, //
    },
    types::Type,
};

/// Index of a local stack slot within a function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocalId(pub u32);

/// Index of an SSA-style value temporary within a function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TempId(pub u32);

/// Index of a basic block within a function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Index of a function within a [`crate::program::Program`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// The variable granule tracked by the liveness analysis: either a whole
/// local slot or one field of a local aggregate (the paper's `v#n` naming).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VarKey {
    /// A whole local variable.
    Local(LocalId),
    /// Field `n` of a local struct variable.
    Field(LocalId, u32),
}

impl VarKey {
    /// The local slot this key belongs to.
    pub fn local(&self) -> LocalId {
        match *self {
            VarKey::Local(l) => l,
            VarKey::Field(l, _) => l,
        }
    }
}

/// An operand of an instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Operand {
    /// A value temporary.
    Temp(TempId),
    /// An integer constant.
    Const(i64),
    /// A string constant (pointer to read-only data).
    Str(String),
    /// The address of a named function.
    FuncAddr(String),
    /// The null pointer.
    Null,
}

impl Operand {
    /// The temp inside, if this operand is a temp.
    pub fn as_temp(&self) -> Option<TempId> {
        match self {
            Operand::Temp(t) => Some(*t),
            _ => None,
        }
    }

    /// The constant inside, if this operand is a constant.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            Operand::Const(c) => Some(*c),
            _ => None,
        }
    }
}

/// A memory location an instruction loads from or stores to.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Place {
    /// A whole local slot.
    Local(LocalId),
    /// Field `n` of a local aggregate.
    Field(LocalId, u32),
    /// A global variable, by name.
    Global(String),
    /// Field `n` of a global aggregate.
    GlobalField(String, u32),
    /// The memory a temp points to (`*p`).
    Deref(TempId),
    /// Field `n` of the memory a temp points to (`p->f`).
    DerefField(TempId, u32),
}

impl Place {
    /// The [`VarKey`] this place defines or uses, when it is a direct local
    /// access the liveness analysis can track. Deref and global places return
    /// `None`; they are the domain of the pointer analysis.
    pub fn var_key(&self) -> Option<VarKey> {
        match *self {
            Place::Local(l) => Some(VarKey::Local(l)),
            Place::Field(l, n) => Some(VarKey::Field(l, n)),
            _ => None,
        }
    }
}

/// Unary operation kinds at the IR level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IrUnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (produces 0/1).
    Not,
    /// Bitwise complement.
    BitNot,
}

/// The callee of a call instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Callee {
    /// A direct call to a named function.
    Direct(String),
    /// An indirect call through a function-pointer value.
    Indirect(TempId),
}

/// How the stored value of a `Store` was produced; used by the detector to
/// classify candidates (return values, parameter entries) and by the cursor
/// pruner (self-increment by a constant).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum StoreInfo {
    /// An ordinary store.
    #[default]
    Normal,
    /// The implicit store of parameter `index`'s incoming value at entry.
    ParamInit {
        /// Zero-based parameter index.
        index: usize,
    },
    /// The stored value is the return value of a call to `callee`.
    RetVal {
        /// Name of the called function (resolved pointee for indirect calls).
        callee: String,
        /// Whether the destination slot is a compiler-synthesized temp slot,
        /// i.e. the source ignored the return value entirely.
        synthetic_dst: bool,
    },
    /// The stored value is `old(place) + delta` for constant `delta`
    /// (increment/decrement or `p = p + c`), the cursor shape of §5.2.
    SelfOffset {
        /// The constant offset added to the place's previous value.
        delta: i64,
    },
}

/// One IR instruction.
#[derive(Clone, Debug)]
pub enum Inst {
    /// `dst = load place`.
    Load {
        /// Destination temp.
        dst: TempId,
        /// Source location.
        place: Place,
        /// Source span.
        span: Span,
    },
    /// `store place, value`.
    Store {
        /// Destination location.
        place: Place,
        /// Stored value.
        value: Operand,
        /// Provenance of the stored value.
        info: StoreInfo,
        /// Source span.
        span: Span,
    },
    /// `dst = op lhs, rhs`.
    Bin {
        /// Destination temp.
        dst: TempId,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
        /// Source span.
        span: Span,
    },
    /// `dst = op operand`.
    Un {
        /// Destination temp.
        dst: TempId,
        /// Operator.
        op: IrUnOp,
        /// Operand.
        operand: Operand,
        /// Source span.
        span: Span,
    },
    /// `dst = &place` — the address of a slot is taken, which makes the slot
    /// escape into the pointer world.
    AddrOf {
        /// Destination temp.
        dst: TempId,
        /// Whose address is taken.
        place: Place,
        /// Source span.
        span: Span,
    },
    /// `dst = call callee(args)`; `dst` is `None` for void calls.
    Call {
        /// Result temp, when the callee returns a value.
        dst: Option<TempId>,
        /// Who is called.
        callee: Callee,
        /// Arguments in order.
        args: Vec<Operand>,
        /// Source span.
        span: Span,
    },
}

impl Inst {
    /// The span of the instruction.
    pub fn span(&self) -> Span {
        match self {
            Inst::Load { span, .. }
            | Inst::Store { span, .. }
            | Inst::Bin { span, .. }
            | Inst::Un { span, .. }
            | Inst::AddrOf { span, .. }
            | Inst::Call { span, .. } => *span,
        }
    }

    /// The temp defined by this instruction, if any.
    pub fn def_temp(&self) -> Option<TempId> {
        match self {
            Inst::Load { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::AddrOf { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::Store { .. } => None,
        }
    }
}

/// A basic-block terminator.
#[derive(Clone, Debug)]
pub enum Terminator {
    /// Unconditional branch.
    Br(BlockId),
    /// Two-way conditional branch.
    CondBr {
        /// Branch condition (nonzero = then).
        cond: Operand,
        /// Target when nonzero.
        then_bb: BlockId,
        /// Target when zero.
        else_bb: BlockId,
    },
    /// Function return with optional value.
    Ret {
        /// Returned value, if any.
        value: Option<Operand>,
        /// Span of the `return` (or the closing brace for implicit returns).
        span: Span,
    },
    /// Control never reaches here (e.g. after `break` path pruning).
    Unreachable,
}

impl Terminator {
    /// The successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br(b) => vec![*b],
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => {
                if then_bb == else_bb {
                    vec![*then_bb]
                } else {
                    vec![*then_bb, *else_bb]
                }
            }
            Terminator::Ret { .. } | Terminator::Unreachable => Vec::new(),
        }
    }
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Clone, Debug)]
pub struct BasicBlock {
    /// Instructions in execution order.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Terminator,
}

/// Why a local slot exists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LocalKind {
    /// A named source-level variable.
    Named,
    /// The slot backing parameter `n`.
    Param(usize),
    /// A compiler-synthesized slot (e.g. the implicit destination of an
    /// ignored call result: `[tmp] = printf(...)`).
    Synthetic,
}

/// Metadata for one local slot.
#[derive(Clone, Debug)]
pub struct LocalInfo {
    /// Source-level name (synthetic slots get `$`-prefixed names).
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Declaration span.
    pub span: Span,
    /// Whether the declaration carries an `unused` attribute.
    pub unused_attr: bool,
    /// Why the slot exists.
    pub kind: LocalKind,
}

/// Metadata for one parameter.
#[derive(Clone, Debug)]
pub struct ParamInfo {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
    /// The slot the incoming value is spilled into.
    pub local: LocalId,
    /// Whether the parameter carries an `unused` attribute.
    pub unused_attr: bool,
    /// Span of the parameter in the signature.
    pub span: Span,
}

/// Where a temp's value came from; a per-function parallel table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TempOrigin {
    /// Result of a direct call to the named function.
    Call(String),
    /// Result of an indirect call.
    IndirectCall,
    /// Loaded from a place.
    Load(Place),
    /// Result of a binary operation.
    Bin(BinOp),
    /// Result of a unary operation.
    Un(IrUnOp),
    /// The address of a place.
    AddrOf(Place),
    /// The incoming value of parameter `n`.
    Param(usize),
}

/// A lowered function.
#[derive(Clone, Debug)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret_ty: Type,
    /// Parameters in order.
    pub params: Vec<ParamInfo>,
    /// All local slots.
    pub locals: Vec<LocalInfo>,
    /// Basic blocks; `BlockId` indexes this vector.
    pub blocks: Vec<BasicBlock>,
    /// The entry block.
    pub entry: BlockId,
    /// Origin of each temp; `TempId` indexes this vector.
    pub temp_origins: Vec<TempOrigin>,
    /// Whether the function was `static`.
    pub is_static: bool,
    /// The file the function was defined in.
    pub file: FileId,
    /// Span of the signature.
    pub span: Span,
    /// Spans of every `return` statement in the body (paper: `getRetAuthor`).
    pub return_spans: Vec<Span>,
    /// Names of variables that appear inside preprocessor-guarded statements
    /// in the source of this function, whether or not those statements were
    /// compiled under the active configuration (paper §5.1).
    pub guarded_mentions: std::collections::BTreeSet<String>,
    /// True when the body came out of parse recovery with poisoned
    /// ([`crate::ast::StmtKind::Error`]) regions: part of the source was
    /// discarded, so the detector marks this function's candidates
    /// `low_confidence`.
    pub recovered: bool,
}

impl Function {
    /// Looks up a local slot by source name.
    pub fn local_by_name(&self, name: &str) -> Option<LocalId> {
        self.locals
            .iter()
            .position(|l| l.name == name)
            .map(|i| LocalId(i as u32))
    }

    /// Metadata for a local slot.
    pub fn local(&self, id: LocalId) -> &LocalInfo {
        &self.locals[id.0 as usize]
    }

    /// The block with the given id.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// Iterates over `(BlockId, &BasicBlock)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// A human-readable name for a [`VarKey`], like `buf` or `sctx#2`.
    pub fn var_key_name(&self, key: VarKey) -> String {
        match key {
            VarKey::Local(l) => self.local(l).name.clone(),
            VarKey::Field(l, n) => format!("{}#{n}", self.local(l).name),
        }
    }

    /// Total number of IR instructions.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

/// A function known only by prototype (declared but not defined here), or
/// an external library function.
#[derive(Clone, Debug)]
pub struct ExternFunc {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret_ty: Type,
    /// Parameter types.
    pub param_tys: Vec<Type>,
    /// Where the prototype appeared.
    pub span: Span,
    /// The declaring file.
    pub file: FileId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_key_local_extraction() {
        assert_eq!(VarKey::Field(LocalId(3), 1).local(), LocalId(3));
        assert_eq!(VarKey::Local(LocalId(2)).local(), LocalId(2));
    }

    #[test]
    fn place_var_keys() {
        assert_eq!(
            Place::Local(LocalId(1)).var_key(),
            Some(VarKey::Local(LocalId(1)))
        );
        assert_eq!(
            Place::Field(LocalId(1), 4).var_key(),
            Some(VarKey::Field(LocalId(1), 4))
        );
        assert_eq!(Place::Deref(TempId(0)).var_key(), None);
        assert_eq!(Place::Global("g".into()).var_key(), None);
    }

    #[test]
    fn condbr_to_same_target_dedups_successors() {
        let t = Terminator::CondBr {
            cond: Operand::Const(1),
            then_bb: BlockId(1),
            else_bb: BlockId(1),
        };
        assert_eq!(t.successors(), vec![BlockId(1)]);
    }

    #[test]
    fn ret_has_no_successors() {
        let t = Terminator::Ret {
            value: None,
            span: Span::synthetic(),
        };
        assert!(t.successors().is_empty());
    }
}
