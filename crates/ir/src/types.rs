//! The MiniC type system.
//!
//! Types are deliberately loose (C-like): all integer types are mutually
//! assignable. The type system's real job is to resolve struct fields to
//! stable indices (for field-sensitive analysis) and to distinguish pointers
//! (for alias analysis) from scalars.

use std::collections::HashMap;

use crate::span::Span;

/// A MiniC type.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    /// `int`.
    Int,
    /// `unsigned` / `unsigned int`.
    Uint,
    /// `long`.
    Long,
    /// `char`.
    Char,
    /// `bool`.
    Bool,
    /// `void` (only meaningful as a return type or pointee).
    Void,
    /// `size_t`.
    SizeT,
    /// A pointer to `T`.
    Ptr(Box<Type>),
    /// A named struct type.
    Struct(String),
    /// A fixed-size array.
    Array(Box<Type>, usize),
}

impl Type {
    /// Returns true for any integer-like scalar.
    pub fn is_integer(&self) -> bool {
        matches!(
            self,
            Type::Int | Type::Uint | Type::Long | Type::Char | Type::Bool | Type::SizeT
        )
    }

    /// Returns true for pointer types (arrays decay to pointers).
    pub fn is_pointer_like(&self) -> bool {
        matches!(self, Type::Ptr(_) | Type::Array(..))
    }

    /// The pointee of a pointer or the element type of an array.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) => Some(t),
            Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Wraps the type in a pointer.
    pub fn ptr_to(self) -> Type {
        Type::Ptr(Box::new(self))
    }
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Uint => write!(f, "unsigned"),
            Type::Long => write!(f, "long"),
            Type::Char => write!(f, "char"),
            Type::Bool => write!(f, "bool"),
            Type::Void => write!(f, "void"),
            Type::SizeT => write!(f, "size_t"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Struct(name) => write!(f, "struct {name}"),
            Type::Array(t, n) => write!(f, "{t}[{n}]"),
        }
    }
}

/// Layout information for one struct: field names resolved to indices.
#[derive(Clone, Debug)]
pub struct StructLayout {
    /// Struct name.
    pub name: String,
    /// Field names in declaration order.
    pub field_names: Vec<String>,
    /// Field types in declaration order.
    pub field_types: Vec<Type>,
    /// Where the struct was defined.
    pub span: Span,
}

impl StructLayout {
    /// Resolves a field name to its index.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.field_names.iter().position(|f| f == name)
    }
}

/// A registry of struct layouts for a whole program.
#[derive(Clone, Debug, Default)]
pub struct TypeTable {
    layouts: HashMap<String, StructLayout>,
}

impl TypeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a struct layout, replacing any previous definition.
    pub fn insert(&mut self, layout: StructLayout) {
        self.layouts.insert(layout.name.clone(), layout);
    }

    /// Looks up a struct by name.
    pub fn get(&self, name: &str) -> Option<&StructLayout> {
        self.layouts.get(name)
    }

    /// Number of registered structs.
    pub fn len(&self) -> usize {
        self.layouts.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.layouts.is_empty()
    }

    /// Iterates over all layouts in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &StructLayout> {
        self.layouts.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_resolution() {
        let layout = StructLayout {
            name: "ctx".into(),
            field_names: vec!["host".into(), "port".into()],
            field_types: vec![Type::Char.ptr_to(), Type::Int],
            span: Span::synthetic(),
        };
        assert_eq!(layout.field_index("port"), Some(1));
        assert_eq!(layout.field_index("missing"), None);
    }

    #[test]
    fn pointer_classification() {
        assert!(Type::Int.ptr_to().is_pointer_like());
        assert!(Type::Array(Box::new(Type::Char), 10).is_pointer_like());
        assert!(!Type::Int.is_pointer_like());
        assert!(Type::SizeT.is_integer());
    }

    #[test]
    fn display_round_trip_shapes() {
        assert_eq!(Type::Char.ptr_to().to_string(), "char*");
        assert_eq!(Type::Struct("s".into()).to_string(), "struct s");
    }
}
