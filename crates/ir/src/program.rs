//! Whole-program containers: source map, program building, call-site index.
//!
//! A [`Program`] corresponds to the paper's "application": many source files
//! compiled into separate modules, analysed per-function but with
//! program-wide indexes (call sites, signatures) for authorship lookup and
//! peer-definition pruning.

use std::collections::HashMap;

use crate::{
    ast::{
        Item,
        Module, //
    },
    ir::{
        Callee,
        ExternFunc,
        FuncId,
        Function,
        Inst,
        TempId, //
    },
    lower::{
        lower_function,
        LowerCtx,
        LowerError, //
    },
    parser::{
        parse,
        parse_with_recovery,
        ParseError, //
    },
    span::{
        FileId,
        Span, //
    },
    types::{
        StructLayout,
        Type,
        TypeTable, //
    },
};

/// A source file registered in the [`SourceMap`].
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Path-like file name (used as the key into the VCS history).
    pub name: String,
    /// The file's id.
    pub id: FileId,
    /// Raw content (may be empty when building from pre-parsed modules).
    pub content: String,
}

/// Maps [`FileId`]s to file names and contents.
#[derive(Clone, Debug, Default)]
pub struct SourceMap {
    files: Vec<SourceFile>,
}

impl SourceMap {
    /// Registers a file and returns its id.
    pub fn add(&mut self, name: String, content: String) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files.push(SourceFile { name, id, content });
        id
    }

    /// Looks up a file by id.
    pub fn file(&self, id: FileId) -> Option<&SourceFile> {
        self.files.get(id.0 as usize)
    }

    /// The name of a file, or `"<synthetic>"`.
    pub fn name(&self, id: FileId) -> &str {
        self.file(id)
            .map(|f| f.name.as_str())
            .unwrap_or("<synthetic>")
    }

    /// Number of registered files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether no files are registered.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Iterates over all files.
    pub fn iter(&self) -> impl Iterator<Item = &SourceFile> {
        self.files.iter()
    }
}

/// An error raised while building a program.
#[derive(Clone, Debug)]
pub enum BuildError {
    /// A parse failure. With recovery enabled this is function-granular:
    /// `function: Some(..)` means only that item was dropped (or survived
    /// with poisoned statements); `None` means the whole file was lost.
    Parse {
        /// The offending file.
        file: String,
        /// The function the failure was attributed to, when recovery could
        /// isolate it to one item.
        function: Option<String>,
        /// The underlying error.
        error: ParseError,
    },
    /// A function failed to lower.
    Lower {
        /// The offending file.
        file: String,
        /// The offending function.
        function: String,
        /// The underlying error.
        error: LowerError,
    },
}

impl BuildError {
    /// The file the error names.
    pub fn file(&self) -> &str {
        match self {
            BuildError::Parse { file, .. } | BuildError::Lower { file, .. } => file,
        }
    }

    /// The function the error is scoped to, if it is function-granular.
    pub fn function(&self) -> Option<&str> {
        match self {
            BuildError::Parse { function, .. } => function.as_deref(),
            BuildError::Lower { function, .. } => Some(function),
        }
    }
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Parse { file, error, .. } => write!(f, "{file}: {error}"),
            BuildError::Lower { file, error, .. } => write!(f, "{file}: {error}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Aggregate statistics from one [`Program::build_recovering`] run; mirrored
/// into the `recover.*` counters by `vcheck`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoverStats {
    /// Lexical diagnostics collected across all files.
    pub lex_errors: u64,
    /// Parse diagnostics collected across all files.
    pub parse_errors: u64,
    /// Poisoned [`crate::ast::StmtKind::Error`] regions in surviving
    /// functions.
    pub poisoned_stmts: u64,
    /// Top-level items dropped from files that otherwise survived.
    pub functions_dropped: u64,
    /// Files whose recovery salvaged nothing.
    pub files_dropped: u64,
}

impl RecoverStats {
    /// Accumulates another file's stats into this aggregate.
    pub fn absorb(&mut self, other: RecoverStats) {
        self.lex_errors += other.lex_errors;
        self.parse_errors += other.parse_errors;
        self.poisoned_stmts += other.poisoned_stmts;
        self.functions_dropped += other.functions_dropped;
        self.files_dropped += other.files_dropped;
    }
}

/// The recovered parse of one source file, cacheable by content: the
/// salvaged module (`None` when recovery salvaged nothing), the
/// function-granular parse errors in report order, and the file's
/// [`RecoverStats`] contribution.
#[derive(Clone, Debug)]
struct RecoveredFile {
    module: Option<std::sync::Arc<Module>>,
    errors: Vec<BuildError>,
    stats: RecoverStats,
}

/// A content-keyed cache of per-file parse recovery, for callers that
/// rebuild the same tree repeatedly with small edits (the `vcheck serve`
/// warm path). Keys bind the file's position, name, *and* content, so a
/// renamed, reordered, or edited file always misses; every build sweeps
/// entries for files no longer in the tree, bounding the cache at one entry
/// per current file.
#[derive(Debug, Default)]
pub struct ParseCache {
    entries: HashMap<u64, RecoveredFile>,
    hits: u64,
    misses: u64,
}

impl ParseCache {
    /// Cache key for one file: FNV-1a over position, name, and content,
    /// with `0xFF` field separators (no legal byte sequence collides
    /// across field boundaries).
    fn key(id: FileId, name: &str, src: &str) -> u64 {
        const FNV_SEED: u64 = 0xCBF2_9CE4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = FNV_SEED;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h = (h ^ u64::from(*b)).wrapping_mul(FNV_PRIME);
            }
            h = (h ^ 0xFF).wrapping_mul(FNV_PRIME);
        };
        eat(&id.0.to_le_bytes());
        eat(name.as_bytes());
        eat(src.as_bytes());
        h
    }

    /// Files served from cache across the cache's lifetime.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Files that had to be parsed across the cache's lifetime.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every cached entry (quarantine: the next build is cold).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// The per-file half of [`Program::build_recovering`]: parse with recovery
/// and fold the diagnostics into function-granular [`BuildError`]s plus a
/// [`RecoverStats`] contribution. Pure in `(id, name, src)`, which is what
/// makes it cacheable.
fn recover_file(name: &str, id: FileId, src: &str) -> RecoveredFile {
    let mut errors = Vec::new();
    let mut stats = RecoverStats::default();
    let rec = parse_with_recovery(id, src);
    stats.lex_errors += rec.lex_errors.len() as u64;
    stats.parse_errors += rec.diags.len() as u64;

    if rec.module.items.is_empty() && !(rec.diags.is_empty() && rec.lex_errors.is_empty()) {
        // Nothing salvaged: collapse every diagnostic into one file-level
        // failure, as before recovery existed.
        stats.files_dropped += 1;
        let error = rec
            .diags
            .into_iter()
            .next()
            .map(|d| d.error)
            .unwrap_or_else(|| {
                ParseError::from(
                    rec.lex_errors
                        .into_iter()
                        .next()
                        .expect("either a lex or a parse diagnostic exists"),
                )
            });
        errors.push(BuildError::Parse {
            file: name.to_string(),
            function: None,
            error,
        });
        return RecoveredFile {
            module: None,
            errors,
            stats,
        };
    }

    // One error per dropped item; for functions that survived with
    // poisoned regions, remember the first diagnostic per function.
    let mut poisoned_first: HashMap<String, ParseError> = HashMap::new();
    for d in rec.diags {
        if d.dropped_item {
            stats.functions_dropped += 1;
            errors.push(BuildError::Parse {
                file: name.to_string(),
                function: d.function,
                error: d.error,
            });
        } else {
            match d.function {
                Some(f) => {
                    poisoned_first.entry(f).or_insert(d.error);
                }
                None => errors.push(BuildError::Parse {
                    file: name.to_string(),
                    function: None,
                    error: d.error,
                }),
            }
        }
    }
    for item in &rec.module.items {
        if let Item::Func(f) = item {
            stats.poisoned_stmts += f.body.poisoned_count() as u64;
            if let Some(error) = poisoned_first.remove(&f.name) {
                errors.push(BuildError::Parse {
                    file: name.to_string(),
                    function: Some(f.name.clone()),
                    error,
                });
            }
        }
    }
    // Diagnostics attributed to a function whose item was dropped
    // afterwards stay covered by that item's single dropped error.

    RecoveredFile {
        module: Some(std::sync::Arc::new(rec.module)),
        errors,
        stats,
    }
}

/// A compiled program: all lowered functions plus program-wide tables.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// All lowered functions; [`FuncId`] indexes this vector.
    pub funcs: Vec<Function>,
    /// Name → id index over `funcs` (first definition wins).
    func_index: HashMap<String, FuncId>,
    /// Functions declared but not defined in this program (library calls).
    pub extern_funcs: Vec<ExternFunc>,
    /// Global variables and their types.
    pub globals: HashMap<String, Type>,
    /// Struct layouts.
    pub types: TypeTable,
    /// The source map.
    pub source: SourceMap,
    /// Lazily-built cache behind [`Program::call_index`] — authorship, peer
    /// pruning, serve invalidation, and the baselines all ask for the same
    /// index, and the program is immutable once built.
    call_index_cache: std::sync::OnceLock<HashMap<String, Vec<CallSite>>>,
}

/// One call site of a function, in the program-wide call index.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// The calling function.
    pub caller: FuncId,
    /// Span of the call expression.
    pub span: Span,
    /// The temp receiving the return value, if any.
    pub dst: Option<TempId>,
}

impl Program {
    /// Parses and lowers a set of `(file name, source)` pairs under the given
    /// preprocessor configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use vc_ir::program::Program;
    /// let prog = Program::build(&[("a.c", "int f(void) { return 1; }")], &[]).unwrap();
    /// assert_eq!(prog.funcs.len(), 1);
    /// ```
    pub fn build(sources: &[(&str, &str)], defines: &[String]) -> Result<Program, BuildError> {
        let mut map = SourceMap::default();
        let mut modules = Vec::new();
        for (name, src) in sources {
            let id = map.add((*name).to_string(), (*src).to_string());
            let module = parse(id, src).map_err(|error| BuildError::Parse {
                file: (*name).to_string(),
                function: None,
                error,
            })?;
            modules.push(((*name).to_string(), std::sync::Arc::new(module)));
        }
        Self::assemble(map, &modules, defines, None)
    }

    /// Fault-tolerant [`build`](Self::build): parsing recovers at statement
    /// and item granularity ([`parse_with_recovery`]), and a function that
    /// fails to lower is skipped with its error collected, instead of
    /// aborting the whole build. Every source file is still registered in
    /// the [`SourceMap`] (so file ids and report paths stay stable); one
    /// mangled function costs only itself.
    ///
    /// Returns the partial program plus one [`BuildError`] per corrupted
    /// function (or per file when nothing in it was salvageable), in input
    /// order.
    pub fn build_lenient(
        sources: &[(&str, &str)],
        defines: &[String],
    ) -> (Program, Vec<BuildError>) {
        let (prog, errors, _) = Self::build_recovering(sources, defines);
        (prog, errors)
    }

    /// [`build_lenient`](Self::build_lenient) plus the [`RecoverStats`]
    /// funnel describing what recovery had to do.
    ///
    /// Error granularity per file:
    /// - recovery salvaged nothing → one file-level `Parse` error
    ///   (`function: None`);
    /// - a top-level item was dropped → one `Parse` error naming the item's
    ///   function when it could be guessed;
    /// - a function survived with poisoned statement regions → one `Parse`
    ///   error naming it (it still lowers, marked
    ///   [`recovered`](crate::ir::Function::recovered));
    /// - a surviving function fails to lower → one `Lower` error naming it.
    pub fn build_recovering(
        sources: &[(&str, &str)],
        defines: &[String],
    ) -> (Program, Vec<BuildError>, RecoverStats) {
        Self::build_recovering_cached(sources, defines, &mut ParseCache::default())
    }

    /// [`build_recovering`](Self::build_recovering) with a warm
    /// [`ParseCache`]: files whose `(position, name, content)` triple is
    /// unchanged since the previous build reuse their recovered parse
    /// (module, diagnostics, and stats) instead of re-lexing. Assembly —
    /// signature collection and lowering — always runs fresh over the full
    /// module set, so the resulting [`Program`] is byte-for-byte the one a
    /// cold [`build_recovering`](Self::build_recovering) would produce.
    pub fn build_recovering_cached(
        sources: &[(&str, &str)],
        defines: &[String],
        cache: &mut ParseCache,
    ) -> (Program, Vec<BuildError>, RecoverStats) {
        let mut map = SourceMap::default();
        let mut modules: Vec<(String, std::sync::Arc<Module>)> = Vec::new();
        let mut errors = Vec::new();
        let mut stats = RecoverStats::default();
        let mut next = HashMap::with_capacity(sources.len());
        for (name, src) in sources {
            let id = map.add((*name).to_string(), (*src).to_string());
            let key = ParseCache::key(id, name, src);
            let rec = match cache.entries.remove(&key) {
                Some(rec) => {
                    cache.hits += 1;
                    rec
                }
                None => {
                    cache.misses += 1;
                    recover_file(name, id, src)
                }
            };
            errors.extend(rec.errors.iter().cloned());
            stats.absorb(rec.stats);
            if let Some(m) = &rec.module {
                modules.push(((*name).to_string(), m.clone()));
            }
            next.insert(key, rec);
        }
        // Generational sweep: only files present in this build survive, so
        // a long-lived cache cannot grow past the current tree.
        cache.entries = next;
        let prog = Self::assemble(map, &modules, defines, Some(&mut errors))
            .expect("lenient assembly collects errors instead of failing");
        (prog, errors, stats)
    }

    /// Builds a program from already-parsed modules.
    pub fn from_modules(
        modules: Vec<(String, Module)>,
        defines: &[String],
    ) -> Result<Program, BuildError> {
        let mut map = SourceMap::default();
        for (name, _) in &modules {
            map.add(name.clone(), String::new());
        }
        let modules: Vec<(String, std::sync::Arc<Module>)> = modules
            .into_iter()
            .map(|(n, m)| (n, std::sync::Arc::new(m)))
            .collect();
        Self::assemble(map, &modules, defines, None)
    }

    /// Pass 1 + 2 over parsed modules. With `errors: Some(..)` the build is
    /// lenient: a function that fails to lower is recorded there and
    /// skipped. With `None`, the first lowering error aborts the build.
    fn assemble(
        source: SourceMap,
        modules: &[(String, std::sync::Arc<Module>)],
        defines: &[String],
        mut errors: Option<&mut Vec<BuildError>>,
    ) -> Result<Program, BuildError> {
        // Pass 1: collect structs, globals and every function signature.
        let mut types = TypeTable::new();
        let mut globals = HashMap::new();
        let mut func_ret: HashMap<String, Type> = HashMap::new();
        let mut defined: HashMap<String, ()> = HashMap::new();
        let mut protos: Vec<ExternFunc> = Vec::new();
        for (_, module) in modules {
            for item in &module.items {
                match item {
                    Item::Struct(s) => {
                        types.insert(StructLayout {
                            name: s.name.clone(),
                            field_names: s.fields.iter().map(|f| f.name.clone()).collect(),
                            field_types: s.fields.iter().map(|f| f.ty.clone()).collect(),
                            span: s.span,
                        });
                    }
                    Item::Global(g) => {
                        globals.insert(g.name.clone(), g.ty.clone());
                    }
                    Item::Func(f) => {
                        func_ret.insert(f.name.clone(), f.ret.clone());
                        defined.insert(f.name.clone(), ());
                    }
                    Item::FuncDecl(d) => {
                        func_ret.insert(d.name.clone(), d.ret.clone());
                        protos.push(ExternFunc {
                            name: d.name.clone(),
                            ret_ty: d.ret.clone(),
                            param_tys: d.params.iter().map(|p| p.ty.clone()).collect(),
                            span: d.span,
                            file: d.span.file,
                        });
                    }
                }
            }
        }
        // Prototypes for functions also defined in-program are not extern.
        let extern_funcs = protos
            .into_iter()
            .filter(|p| !defined.contains_key(&p.name))
            .collect();

        // Pass 2: lower every function body.
        let ctx = LowerCtx {
            types: &types,
            func_ret: &func_ret,
            globals: &globals,
            defines,
        };
        let mut funcs = Vec::new();
        for (name, module) in modules {
            for item in &module.items {
                if let Item::Func(f) = item {
                    match lower_function(&ctx, f) {
                        Ok(lowered) => funcs.push(lowered),
                        Err(error) => {
                            let err = BuildError::Lower {
                                file: name.clone(),
                                function: f.name.clone(),
                                error,
                            };
                            match errors.as_deref_mut() {
                                Some(sink) => sink.push(err),
                                None => return Err(err),
                            }
                        }
                    }
                }
            }
        }

        let mut func_index = HashMap::new();
        for (i, f) in funcs.iter().enumerate() {
            func_index.entry(f.name.clone()).or_insert(FuncId(i as u32));
        }
        Ok(Program {
            funcs,
            func_index,
            extern_funcs,
            globals,
            types,
            source,
            call_index_cache: std::sync::OnceLock::new(),
        })
    }

    /// Looks up a function id by name (first definition wins).
    pub fn func_id(&self, name: &str) -> Option<FuncId> {
        self.func_index.get(name).copied()
    }

    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<&Function> {
        self.func_id(name).map(|id| self.func(id))
    }

    /// The function with the given id.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Whether `name` is defined in this program (vs. a library call).
    pub fn defines_function(&self, name: &str) -> bool {
        self.func_by_name(name).is_some()
    }

    /// An extern (declared-only) function by name.
    pub fn extern_by_name(&self, name: &str) -> Option<&ExternFunc> {
        self.extern_funcs.iter().find(|f| f.name == name)
    }

    /// The program-wide index of direct call sites, keyed by callee name.
    /// Used by peer-definition pruning, authorship lookup, serve
    /// invalidation, and the baselines — built once on first demand and
    /// cached (the program is immutable after construction).
    pub fn call_index(&self) -> &HashMap<String, Vec<CallSite>> {
        self.call_index_cache.get_or_init(|| {
            let mut index: HashMap<String, Vec<CallSite>> = HashMap::new();
            for (fi, f) in self.funcs.iter().enumerate() {
                for bb in &f.blocks {
                    for inst in &bb.insts {
                        if let Inst::Call {
                            dst,
                            callee: Callee::Direct(name),
                            span,
                            ..
                        } = inst
                        {
                            index.entry(name.clone()).or_default().push(CallSite {
                                caller: FuncId(fi as u32),
                                span: *span,
                                dst: *dst,
                            });
                        }
                    }
                }
            }
            index
        })
    }

    /// Total number of IR instructions across all functions.
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(|f| f.inst_count()).sum()
    }

    /// Functions defined in the given file.
    pub fn funcs_in_file(&self, file: FileId) -> impl Iterator<Item = (FuncId, &Function)> {
        self.funcs
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.file == file)
            .map(|(i, f)| (FuncId(i as u32), f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_multi_file_program() {
        let prog = Program::build(
            &[
                ("a.c", "int helper(int x) { return x + 1; }"),
                (
                    "b.c",
                    "int helper(int x);\nint main(void) { return helper(2); }",
                ),
            ],
            &[],
        )
        .unwrap();
        assert_eq!(prog.funcs.len(), 2);
        assert!(prog.defines_function("helper"));
        // The prototype in b.c must not count as extern: helper is defined.
        assert!(prog.extern_by_name("helper").is_none());
    }

    #[test]
    fn lenient_build_skips_malformed_files_and_reports_spans() {
        let (prog, errors) = Program::build_lenient(
            &[
                ("good.c", "int ok(void) { return 1; }"),
                ("bad.c", "int broken(void) { int x = 1;"),
                ("also_good.c", "int fine(void) { return 2; }"),
            ],
            &[],
        );
        assert_eq!(prog.funcs.len(), 2);
        assert!(prog.defines_function("ok"));
        assert!(prog.defines_function("fine"));
        assert!(!prog.defines_function("broken"));
        assert_eq!(errors.len(), 1);
        // The error names the file and carries a line:col position.
        let msg = errors[0].to_string();
        assert!(msg.starts_with("bad.c:"), "{msg}");
        assert!(matches!(&errors[0], BuildError::Parse { .. }));
        // All three files keep their SourceMap slots.
        assert_eq!(prog.source.len(), 3);
    }

    #[test]
    fn recovering_build_keeps_healthy_functions_of_a_corrupted_file() {
        let (prog, errors, stats) = Program::build_recovering(
            &[(
                "mixed.c",
                "int ok(void) { return 1; }\n\
                 int poisoned(void) { int x = $$; return 0; }\n\
                 garbled dropped_fn(void) { return 2; }\n\
                 int also_ok(void) { return 3; }\n",
            )],
            &[],
        );
        assert!(prog.defines_function("ok"));
        assert!(prog.defines_function("also_ok"));
        assert!(prog.defines_function("poisoned"));
        assert!(!prog.defines_function("dropped_fn"));
        assert!(prog.func_by_name("poisoned").unwrap().recovered);
        assert!(!prog.func_by_name("ok").unwrap().recovered);
        // Exactly one error per corrupted function, none for healthy ones.
        let funcs: Vec<_> = errors.iter().map(|e| e.function()).collect();
        assert_eq!(funcs, vec![Some("dropped_fn"), Some("poisoned")]);
        assert_eq!(stats.functions_dropped, 1);
        assert_eq!(stats.poisoned_stmts, 1);
        assert_eq!(stats.files_dropped, 0);
        assert_eq!(stats.lex_errors, 2);
        assert_eq!(stats.parse_errors, 2);
    }

    #[test]
    fn recovering_build_collapses_a_hopeless_file_to_one_error() {
        let (prog, errors, stats) = Program::build_recovering(
            &[
                ("junk.c", "@@ %% ?? garbage ## $$\n"),
                ("good.c", "int fine(void) { return 1; }"),
            ],
            &[],
        );
        assert_eq!(prog.funcs.len(), 1);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].file(), "junk.c");
        assert_eq!(errors[0].function(), None);
        assert_eq!(stats.files_dropped, 1);
        assert_eq!(stats.functions_dropped, 0);
    }

    #[test]
    fn recovering_build_is_clean_on_clean_input() {
        let sources = [("a.c", "int f(void) { if (1) { return 1; } return 0; }")];
        let (prog, errors, stats) = Program::build_recovering(&sources, &[]);
        assert!(errors.is_empty());
        assert_eq!(stats, RecoverStats::default());
        assert_eq!(prog.funcs.len(), 1);
        assert!(!prog.funcs[0].recovered);
    }

    #[test]
    fn lenient_build_with_clean_input_matches_strict_build() {
        let sources = [("a.c", "int f(void) { return 1; }")];
        let strict = Program::build(&sources, &[]).unwrap();
        let (lenient, errors) = Program::build_lenient(&sources, &[]);
        assert!(errors.is_empty());
        assert_eq!(strict.funcs.len(), lenient.funcs.len());
    }

    #[test]
    fn extern_prototypes_are_recorded() {
        let prog = Program::build(
            &[(
                "a.c",
                "int printf(char *fmt);\nvoid f(void) { printf(\"x\"); }",
            )],
            &[],
        )
        .unwrap();
        assert!(prog.extern_by_name("printf").is_some());
        assert!(!prog.defines_function("printf"));
    }

    #[test]
    fn call_index_finds_all_sites() {
        let prog = Program::build(
            &[(
                "a.c",
                "int g(void) { return 1; }\n\
                 void f(void) { int a = g(); int b = g(); use(a); use(b); }",
            )],
            &[],
        )
        .unwrap();
        let idx = prog.call_index();
        assert_eq!(idx.get("g").map(|v| v.len()), Some(2));
        assert_eq!(idx.get("use").map(|v| v.len()), Some(2));
    }

    #[test]
    fn disabled_config_skips_statements() {
        let src = "void f(void) {\nint x = 1;\n#ifdef FEATURE\nuse(x);\n#endif\n}";
        let without = Program::build(&[("a.c", src)], &[]).unwrap();
        let with = Program::build(&[("a.c", src)], &["FEATURE".into()]).unwrap();
        let f_without = without.func_by_name("f").unwrap();
        let f_with = with.func_by_name("f").unwrap();
        assert!(f_with.inst_count() > f_without.inst_count());
        // Either way the guarded mention of `x` is recorded.
        assert!(f_without.guarded_mentions.contains("x"));
        assert!(f_with.guarded_mentions.contains("x"));
    }

    #[test]
    fn struct_fields_resolve_across_files() {
        let prog = Program::build(
            &[
                ("types.c", "struct ctx { int mode; char *host; };"),
                ("use.c", "void f(struct ctx *c) { c->mode = 1; }"),
            ],
            &[],
        )
        .unwrap();
        assert_eq!(prog.types.len(), 1);
        assert_eq!(prog.funcs.len(), 1);
    }

    /// Sources mixing healthy, poisoned, and hopeless files — every path
    /// through `recover_file` — used to prove cached rebuilds are inert.
    const CACHE_SOURCES: &[(&str, &str)] = &[
        ("good.c", "int fine(void) { return 1; }\n"),
        (
            "mixed.c",
            "int ok(void) { return 1; }\n\
             int poisoned(void) { int x = $$; return 0; }\n\
             garbled dropped_fn(void) { return 2; }\n",
        ),
        ("junk.c", "@@ %% ?? garbage ## $$\n"),
    ];

    #[test]
    fn cached_rebuild_is_byte_identical_to_cold() {
        let (cold, cold_errs, cold_stats) = Program::build_recovering(CACHE_SOURCES, &[]);
        let mut cache = ParseCache::default();
        let (first, _, _) = Program::build_recovering_cached(CACHE_SOURCES, &[], &mut cache);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 3);
        let (warm, warm_errs, warm_stats) =
            Program::build_recovering_cached(CACHE_SOURCES, &[], &mut cache);
        assert_eq!(cache.hits(), 3, "second build reuses every file");
        assert_eq!(warm_stats, cold_stats);
        assert_eq!(
            warm_errs.iter().map(|e| e.to_string()).collect::<Vec<_>>(),
            cold_errs.iter().map(|e| e.to_string()).collect::<Vec<_>>(),
        );
        for prog in [&first, &warm] {
            assert_eq!(prog.funcs.len(), cold.funcs.len());
            for (a, b) in prog.funcs.iter().zip(cold.funcs.iter()) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.file, b.file);
                assert_eq!(a.recovered, b.recovered);
                assert_eq!(a.inst_count(), b.inst_count());
            }
        }
    }

    #[test]
    fn cache_misses_on_edit_and_sweeps_removed_files() {
        let mut cache = ParseCache::default();
        let _ = Program::build_recovering_cached(CACHE_SOURCES, &[], &mut cache);
        assert_eq!(cache.len(), 3);
        // Edit one file: that file misses, the others hit.
        let edited: Vec<(&str, &str)> = vec![
            ("good.c", "int fine(void) { return 2; }\n"),
            CACHE_SOURCES[1],
            CACHE_SOURCES[2],
        ];
        let (prog, _, _) = Program::build_recovering_cached(&edited, &[], &mut cache);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 4);
        assert!(prog.defines_function("fine"));
        // Drop two files: the sweep forgets them.
        let shrunk: Vec<(&str, &str)> = vec![CACHE_SOURCES[0]];
        let _ = Program::build_recovering_cached(&shrunk, &[], &mut cache);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn cache_key_binds_file_position() {
        // The same (name, content) at a different FileId must miss: spans
        // inside the cached module are bound to the original id.
        let mut cache = ParseCache::default();
        let _ = Program::build_recovering_cached(CACHE_SOURCES, &[], &mut cache);
        let reordered: Vec<(&str, &str)> =
            vec![CACHE_SOURCES[1], CACHE_SOURCES[0], CACHE_SOURCES[2]];
        let (prog, _, _) = Program::build_recovering_cached(&reordered, &[], &mut cache);
        assert_eq!(cache.hits(), 1, "only junk.c kept its position");
        let ok = prog.func_by_name("ok").unwrap();
        assert_eq!(prog.source.name(ok.file), "mixed.c");
    }
}
