//! Test support: deterministic random MiniC programs.
//!
//! Property tests across the workspace need "some arbitrary valid program".
//! [`source_from_seed`] derives one deterministically from a `u64`, using a
//! self-contained LCG so the crate needs no RNG dependency. Generated
//! programs always parse, lower, and pass IR validation (checked by this
//! module's own tests).

/// A minimal LCG; constants from Numerical Recipes.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Self(
            seed.wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407),
        )
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Generates a deterministic, valid MiniC source file from a seed.
///
/// The program contains 1–4 functions with declarations, assignments,
/// arithmetic, calls, branches, and loops over a small variable pool; it is
/// guaranteed to parse and lower (see this module's tests).
pub fn source_from_seed(seed: u64) -> String {
    let mut rng = Lcg::new(seed);
    let nfuncs = 1 + rng.below(4);
    let mut out = String::new();
    for fi in 0..nfuncs {
        gen_function(&mut rng, fi, &mut out);
    }
    out
}

fn gen_function(rng: &mut Lcg, fi: usize, out: &mut String) {
    let nparams = rng.below(3);
    let params: Vec<String> = (0..nparams).map(|i| format!("p{i}")).collect();
    let sig = if params.is_empty() {
        "void".to_string()
    } else {
        params
            .iter()
            .map(|p| format!("int {p}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    out.push_str(&format!("int fn{fi}({sig}) {{\n"));
    // Start the scope with a couple of locals so uses always resolve.
    let mut vars: Vec<String> = params;
    for i in 0..(1 + rng.below(3)) {
        let v = format!("v{i}");
        out.push_str(&format!("  int {v} = {};\n", rng.below(100)));
        vars.push(v);
    }
    let nstmts = 1 + rng.below(6);
    for _ in 0..nstmts {
        gen_stmt(rng, &vars, 1, out);
    }
    out.push_str(&format!("  return {};\n}}\n", expr(rng, &vars, 0)));
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn gen_stmt(rng: &mut Lcg, vars: &[String], depth: usize, out: &mut String) {
    match rng.below(if depth >= 3 { 3 } else { 8 }) {
        // Assignment.
        0 => {
            indent(depth, out);
            let v = &vars[rng.below(vars.len())];
            out.push_str(&format!("{v} = {};\n", expr(rng, vars, 0)));
        }
        // Compound assignment.
        1 => {
            indent(depth, out);
            let v = &vars[rng.below(vars.len())];
            let op = ["+=", "-=", "*="][rng.below(3)];
            out.push_str(&format!("{v} {op} {};\n", expr(rng, vars, 0)));
        }
        // Call statement.
        2 => {
            indent(depth, out);
            out.push_str(&format!("sink{}({});\n", rng.below(4), expr(rng, vars, 0)));
        }
        // If / if-else.
        3 => {
            indent(depth, out);
            out.push_str(&format!("if ({}) {{\n", expr(rng, vars, 0)));
            gen_stmt(rng, vars, depth + 1, out);
            indent(depth, out);
            if rng.below(2) == 0 {
                out.push_str("} else {\n");
                gen_stmt(rng, vars, depth + 1, out);
                indent(depth, out);
            }
            out.push_str("}\n");
        }
        // Bounded while loop.
        4 => {
            indent(depth, out);
            let v = &vars[rng.below(vars.len())];
            out.push_str(&format!("while ({v} > 0) {{\n"));
            indent(depth + 1, out);
            out.push_str(&format!("{v} = {v} - 1;\n"));
            gen_stmt(rng, vars, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        // For loop.
        5 => {
            indent(depth, out);
            out.push_str(&format!(
                "for (int k = 0; k < {}; k = k + 1) {{\n",
                1 + rng.below(9)
            ));
            let mut inner: Vec<String> = vars.to_vec();
            inner.push("k".into());
            gen_stmt(rng, &inner, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        // Switch.
        6 => {
            indent(depth, out);
            let v = &vars[rng.below(vars.len())];
            out.push_str(&format!("switch ({v}) {{\n"));
            let arms = 1 + rng.below(3);
            for a in 0..arms {
                indent(depth, out);
                out.push_str(&format!("case {a}:\n"));
                gen_stmt(rng, vars, depth + 1, out);
                indent(depth + 1, out);
                out.push_str("break;\n");
            }
            if rng.below(2) == 0 {
                indent(depth, out);
                out.push_str("default:\n");
                gen_stmt(rng, vars, depth + 1, out);
            }
            indent(depth, out);
            out.push_str("}\n");
        }
        // Bounded do-while.
        _ => {
            indent(depth, out);
            let v = &vars[rng.below(vars.len())];
            out.push_str("do {\n");
            indent(depth + 1, out);
            out.push_str(&format!("{v} = {v} - 1;\n"));
            gen_stmt(rng, vars, depth + 1, out);
            indent(depth, out);
            out.push_str(&format!("}} while ({v} > 0);\n"));
        }
    }
}

fn expr(rng: &mut Lcg, vars: &[String], depth: usize) -> String {
    match rng.below(if depth >= 2 { 2 } else { 5 }) {
        0 => rng.below(100).to_string(),
        1 => vars[rng.below(vars.len())].clone(),
        2 => {
            let op = ["+", "-", "*", "<", "==", "&&"][rng.below(6)];
            format!(
                "({} {} {})",
                expr(rng, vars, depth + 1),
                op,
                expr(rng, vars, depth + 1)
            )
        }
        3 => format!("(-{})", expr(rng, vars, depth + 1)),
        _ => format!("get{}({})", rng.below(4), expr(rng, vars, depth + 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        program::Program,
        validate::validate_program, //
    };

    #[test]
    fn generated_sources_build_and_validate() {
        for seed in 0..200u64 {
            let src = source_from_seed(seed);
            let prog = Program::build(&[("gen.c", src.as_str())], &[])
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            validate_program(&prog).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(source_from_seed(7), source_from_seed(7));
        assert_ne!(source_from_seed(7), source_from_seed(8));
    }
}
