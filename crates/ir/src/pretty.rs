//! Pretty printers: AST back to MiniC source, and IR to a readable dump.
//!
//! The AST printer is the inverse of the parser up to formatting; the
//! round-trip property `pretty(parse(pretty(x))) == pretty(x)` is checked by
//! property tests. The workload generator also uses it to materialize
//! generated ASTs as source text that can be committed to the VCS substrate.

use crate::{
    ast::{
        BinOp,
        Block,
        Expr,
        ExprKind,
        FuncDef,
        Guard,
        Item,
        Module,
        Param,
        Stmt,
        StmtKind,
        UnOp, //
    },
    ir::{
        Callee,
        Function,
        Inst,
        Operand,
        Place,
        Terminator, //
    },
    types::Type,
};

/// Renders a module as MiniC source text.
pub fn module_to_source(m: &Module) -> String {
    let mut out = String::new();
    for item in &m.items {
        match item {
            Item::Struct(s) => {
                out.push_str(&format!("struct {} {{\n", s.name));
                for f in &s.fields {
                    out.push_str(&format!("  {};\n", decl_str(&f.ty, &f.name)));
                }
                out.push_str("};\n");
            }
            Item::Global(g) => {
                out.push_str(&decl_str(&g.ty, &g.name));
                if let Some(init) = &g.init {
                    out.push_str(&format!(" = {}", expr_str(init)));
                }
                out.push_str(";\n");
            }
            Item::FuncDecl(d) => {
                out.push_str(&format!(
                    "{} {}({});\n",
                    d.ret,
                    d.name,
                    params_str(&d.params)
                ));
            }
            Item::Func(f) => {
                out.push_str(&func_to_source(f));
            }
        }
    }
    out
}

/// Renders one function definition as source text.
pub fn func_to_source(f: &FuncDef) -> String {
    let mut out = String::new();
    if f.is_static {
        out.push_str("static ");
    }
    out.push_str(&format!(
        "{} {}({}) {{\n",
        f.ret,
        f.name,
        params_str(&f.params)
    ));
    block_body(&f.body, 1, &mut out);
    out.push_str("}\n");
    out
}

fn params_str(params: &[Param]) -> String {
    if params.is_empty() {
        return "void".to_string();
    }
    params
        .iter()
        .map(|p| {
            let mut s = decl_str(&p.ty, &p.name);
            if p.unused_attr {
                s.push_str(" [[maybe_unused]]");
            }
            s
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders `ty name`, putting array lengths after the name as C does.
fn decl_str(ty: &Type, name: &str) -> String {
    match ty {
        Type::Array(elem, n) => format!("{elem} {name}[{n}]"),
        other => format!("{other} {name}"),
    }
}

fn indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn block_body(b: &Block, depth: usize, out: &mut String) {
    let mut open_guards: Vec<Guard> = Vec::new();
    for s in &b.stmts {
        sync_guards(&mut open_guards, &s.guards, out);
        stmt_to_source(s, depth, out);
    }
    sync_guards(&mut open_guards, &[], out);
}

/// Emits `#if`/`#endif` lines to move from the open guard stack to `want`.
fn sync_guards(open: &mut Vec<Guard>, want: &[Guard], out: &mut String) {
    // Pop guards not shared with `want`.
    let common = open
        .iter()
        .zip(want.iter())
        .take_while(|(a, b)| a == b)
        .count();
    while open.len() > common {
        open.pop();
        out.push_str("#endif\n");
    }
    for g in &want[common..] {
        match g {
            Guard::Defined(s) => out.push_str(&format!("#ifdef {s}\n")),
            Guard::NotDefined(s) => out.push_str(&format!("#ifndef {s}\n")),
        }
        open.push(g.clone());
    }
}

fn stmt_to_source(s: &Stmt, depth: usize, out: &mut String) {
    match &s.kind {
        StmtKind::Decl {
            name,
            ty,
            init,
            unused_attr,
        } => {
            indent(depth, out);
            out.push_str(&decl_str(ty, name));
            if *unused_attr {
                out.push_str(" [[maybe_unused]]");
            }
            if let Some(e) = init {
                out.push_str(&format!(" = {}", expr_str(e)));
            }
            out.push_str(";\n");
        }
        StmtKind::Expr(e) => {
            indent(depth, out);
            out.push_str(&expr_str(e));
            out.push_str(";\n");
        }
        StmtKind::If { cond, then, els } => {
            indent(depth, out);
            out.push_str(&format!("if ({}) {{\n", expr_str(cond)));
            block_body(then, depth + 1, out);
            indent(depth, out);
            out.push('}');
            if let Some(e) = els {
                out.push_str(" else {\n");
                block_body(e, depth + 1, out);
                indent(depth, out);
                out.push('}');
            }
            out.push('\n');
        }
        StmtKind::While { cond, body } => {
            indent(depth, out);
            out.push_str(&format!("while ({}) {{\n", expr_str(cond)));
            block_body(body, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        StmtKind::DoWhile { body, cond } => {
            indent(depth, out);
            out.push_str("do {\n");
            block_body(body, depth + 1, out);
            indent(depth, out);
            out.push_str(&format!("}} while ({});\n", expr_str(cond)));
        }
        StmtKind::Switch {
            scrutinee,
            cases,
            default,
        } => {
            indent(depth, out);
            out.push_str(&format!("switch ({}) {{\n", expr_str(scrutinee)));
            for c in cases {
                for v in &c.values {
                    indent(depth + 1, out);
                    if *v < 0 {
                        out.push_str(&format!("case -{}:\n", -v));
                    } else {
                        out.push_str(&format!("case {v}:\n"));
                    }
                }
                block_body(&c.body, depth + 2, out);
                indent(depth + 2, out);
                out.push_str("break;\n");
            }
            if let Some(d) = default {
                indent(depth + 1, out);
                out.push_str("default:\n");
                block_body(d, depth + 2, out);
                indent(depth + 2, out);
                out.push_str("break;\n");
            }
            indent(depth, out);
            out.push_str("}\n");
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            indent(depth, out);
            out.push_str("for (");
            match init {
                Some(i) => match &i.kind {
                    StmtKind::Decl { name, ty, init, .. } => {
                        out.push_str(&decl_str(ty, name));
                        if let Some(e) = init {
                            out.push_str(&format!(" = {}", expr_str(e)));
                        }
                        out.push(';');
                    }
                    StmtKind::Expr(e) => {
                        out.push_str(&expr_str(e));
                        out.push(';');
                    }
                    _ => out.push(';'),
                },
                None => out.push(';'),
            }
            out.push(' ');
            if let Some(c) = cond {
                out.push_str(&expr_str(c));
            }
            out.push_str("; ");
            if let Some(st) = step {
                out.push_str(&expr_str(st));
            }
            out.push_str(") {\n");
            block_body(body, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        StmtKind::Return(v) => {
            indent(depth, out);
            match v {
                Some(e) => out.push_str(&format!("return {};\n", expr_str(e))),
                None => out.push_str("return;\n"),
            }
        }
        StmtKind::Break => {
            indent(depth, out);
            out.push_str("break;\n");
        }
        StmtKind::Continue => {
            indent(depth, out);
            out.push_str("continue;\n");
        }
        StmtKind::Block(b) => {
            indent(depth, out);
            out.push_str("{\n");
            block_body(b, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        StmtKind::Error => {
            indent(depth, out);
            out.push_str("/* poisoned by parse recovery */;\n");
        }
    }
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
        BinOp::BitAnd => "&",
        BinOp::BitOr => "|",
        BinOp::BitXor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
    }
}

/// Renders an expression, fully parenthesized to sidestep precedence.
pub fn expr_str(e: &Expr) -> String {
    match &e.kind {
        ExprKind::IntLit(v) => {
            if *v < 0 {
                format!("({v})")
            } else {
                v.to_string()
            }
        }
        ExprKind::StrLit(s) => format!(
            "\"{}\"",
            s.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
                .replace('\t', "\\t")
        ),
        ExprKind::BoolLit(b) => b.to_string(),
        ExprKind::Null => "NULL".to_string(),
        ExprKind::Var(n) => n.clone(),
        ExprKind::Unary { op, expr } => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
                UnOp::BitNot => "~",
            };
            format!("({sym}{})", expr_str(expr))
        }
        ExprKind::Deref(inner) => format!("(*{})", expr_str(inner)),
        ExprKind::AddrOf(inner) => format!("(&{})", expr_str(inner)),
        ExprKind::IncDec { delta, pre, target } => {
            let sym = if *delta > 0 { "++" } else { "--" };
            if *pre {
                format!("({sym}{})", expr_str(target))
            } else {
                format!("({}{sym})", expr_str(target))
            }
        }
        ExprKind::Binary { op, lhs, rhs } => {
            format!("({} {} {})", expr_str(lhs), binop_str(*op), expr_str(rhs))
        }
        ExprKind::Assign { op, lhs, rhs } => match op {
            None => format!("{} = {}", expr_str(lhs), expr_str(rhs)),
            Some(b) => format!("{} {}= {}", expr_str(lhs), binop_str(*b), expr_str(rhs)),
        },
        ExprKind::Call { callee, args } => {
            let a: Vec<String> = args.iter().map(expr_str).collect();
            format!("{callee}({})", a.join(", "))
        }
        ExprKind::Member { base, field, arrow } => {
            let sep = if *arrow { "->" } else { "." };
            format!("{}{sep}{field}", expr_str(base))
        }
        ExprKind::Index { base, index } => {
            format!("{}[{}]", expr_str(base), expr_str(index))
        }
        ExprKind::Cast { ty, expr } => format!("({ty}){}", expr_str(expr)),
        ExprKind::Ternary { cond, then, els } => format!(
            "({} ? {} : {})",
            expr_str(cond),
            expr_str(then),
            expr_str(els)
        ),
    }
}

/// Renders a lowered function as a readable IR dump, for debugging and
/// snapshot tests.
pub fn function_to_ir_text(f: &Function) -> String {
    let mut out = format!("func {}({} params) {{\n", f.name, f.params.len());
    for (id, bb) in f.iter_blocks() {
        out.push_str(&format!("bb{}:\n", id.0));
        for inst in &bb.insts {
            out.push_str("  ");
            out.push_str(&inst_str(f, inst));
            out.push('\n');
        }
        out.push_str("  ");
        out.push_str(&term_str(&bb.term));
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

fn place_str(f: &Function, p: &Place) -> String {
    match p {
        Place::Local(l) => format!("%{}", f.local(*l).name),
        Place::Field(l, n) => format!("%{}#{n}", f.local(*l).name),
        Place::Global(g) => format!("@{g}"),
        Place::GlobalField(g, n) => format!("@{g}#{n}"),
        Place::Deref(t) => format!("*t{}", t.0),
        Place::DerefField(t, n) => format!("t{}->#{n}", t.0),
    }
}

fn operand_str(o: &Operand) -> String {
    match o {
        Operand::Temp(t) => format!("t{}", t.0),
        Operand::Const(c) => c.to_string(),
        Operand::Str(s) => format!("{s:?}"),
        Operand::FuncAddr(n) => format!("&{n}"),
        Operand::Null => "null".to_string(),
    }
}

fn inst_str(f: &Function, inst: &Inst) -> String {
    match inst {
        Inst::Load { dst, place, .. } => {
            format!("t{} = load {}", dst.0, place_str(f, place))
        }
        Inst::Store {
            place, value, info, ..
        } => format!(
            "store {}, {}  ; {:?}",
            place_str(f, place),
            operand_str(value),
            info
        ),
        Inst::Bin {
            dst, op, lhs, rhs, ..
        } => format!(
            "t{} = {} {} {}",
            dst.0,
            operand_str(lhs),
            binop_str(*op),
            operand_str(rhs)
        ),
        Inst::Un {
            dst, op, operand, ..
        } => {
            format!("t{} = {op:?} {}", dst.0, operand_str(operand))
        }
        Inst::AddrOf { dst, place, .. } => {
            format!("t{} = addr {}", dst.0, place_str(f, place))
        }
        Inst::Call {
            dst, callee, args, ..
        } => {
            let a: Vec<String> = args.iter().map(operand_str).collect();
            let c = match callee {
                Callee::Direct(n) => n.clone(),
                Callee::Indirect(t) => format!("*t{}", t.0),
            };
            match dst {
                Some(d) => format!("t{} = call {c}({})", d.0, a.join(", ")),
                None => format!("call {c}({})", a.join(", ")),
            }
        }
    }
}

fn term_str(t: &Terminator) -> String {
    match t {
        Terminator::Br(b) => format!("br bb{}", b.0),
        Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        } => format!(
            "condbr {}, bb{}, bb{}",
            operand_str(cond),
            then_bb.0,
            else_bb.0
        ),
        Terminator::Ret { value, .. } => match value {
            Some(v) => format!("ret {}", operand_str(v)),
            None => "ret".to_string(),
        },
        Terminator::Unreachable => "unreachable".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        parser::parse,
        span::FileId, //
    };

    fn round_trip(src: &str) {
        let m1 = parse(FileId(0), src).unwrap();
        let printed1 = module_to_source(&m1);
        let m2 = parse(FileId(0), &printed1)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\nprinted:\n{printed1}"));
        let printed2 = module_to_source(&m2);
        assert_eq!(printed1, printed2, "pretty-print not idempotent");
    }

    #[test]
    fn round_trips_basic_constructs() {
        round_trip(
            "struct s { int a; char *b; };\n\
             int g = 4;\n\
             int f(struct s *p, int n) {\n\
               int acc = 0;\n\
               for (int i = 0; i < n; i++) { acc += p->a; }\n\
               while (acc > 100) { acc = acc - 10; }\n\
               if (acc) { return acc; } else { return -1; }\n\
             }",
        );
    }

    #[test]
    fn round_trips_guards() {
        round_trip(
            "void f(void) {\nint x = 1;\n#ifdef A\nuse(x);\n#else\ndrop(x);\n#endif\ndone();\n}",
        );
    }

    #[test]
    fn round_trips_cursor_and_attrs() {
        round_trip("void f(char *o, int force [[maybe_unused]]) {\n*o++ = '_';\n(void)force;\n}");
    }

    #[test]
    fn round_trips_switch_and_do_while() {
        round_trip(
            "int f(int x) {\n\
             int r = 0;\n\
             switch (x) {\n\
             case 1:\n\
             case 2:\n\
               r = 10;\n\
               break;\n\
             case 5:\n\
               r = 50;\n\
             default:\n\
               r = -1;\n\
             }\n\
             do { r = r + 1; } while (r < 0);\n\
             return r;\n\
             }",
        );
    }

    #[test]
    fn ir_dump_is_stable() {
        let prog = crate::program::Program::build(
            &[("a.c", "int f(int x) { int y = x + 1; return y; }")],
            &[],
        )
        .unwrap();
        let dump = function_to_ir_text(&prog.funcs[0]);
        assert!(dump.contains("store %x"), "param spill missing:\n{dump}");
        assert!(dump.contains("store %y"), "local store missing:\n{dump}");
        assert!(dump.contains("ret"), "return missing:\n{dump}");
    }
}
