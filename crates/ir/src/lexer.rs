//! Hand-written lexer for MiniC.
//!
//! The lexer is line/column aware so that every token can be blamed against a
//! version-control history. It recognises a small preprocessor-directive
//! subset (`#if`/`#ifdef`/`#ifndef`/`#else`/`#endif`) as first-class tokens;
//! the parser uses them to model configuration-dependent code without running
//! a full preprocessor.

use crate::{
    span::{
        FileId,
        LineCol,
        Span, //
    },
    token::{
        Token,
        TokenKind, //
    },
};

/// An error produced while lexing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Explanation of what went wrong.
    pub message: String,
    /// Where it went wrong.
    pub span: Span,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    file: FileId,
}

/// Lexes `src` into a token stream terminated by [`TokenKind::Eof`].
///
/// # Examples
///
/// ```
/// use vc_ir::{lexer::lex, span::FileId, token::TokenKind};
/// let toks = lex(FileId(0), "int x = 3;").unwrap();
/// assert!(matches!(toks[0].kind, TokenKind::KwInt));
/// assert!(matches!(toks.last().unwrap().kind, TokenKind::Eof));
/// ```
pub fn lex(file: FileId, src: &str) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        file,
    };
    let mut out = Vec::new();
    loop {
        let tok = lx.next_token()?;
        let done = matches!(tok.kind, TokenKind::Eof);
        out.push(tok);
        if done {
            return Ok(out);
        }
    }
}

/// Lexes `src` like [`lex`], but never gives up: every region that fails to
/// tokenise is surfaced as a [`TokenKind::Error`] token and its diagnostic is
/// collected, so the parser can recover past bad bytes instead of losing the
/// whole file.
///
/// A string literal broken by a raw newline errors *at* the newline without
/// consuming it, so recovery resumes on the next source line.
///
/// # Examples
///
/// ```
/// use vc_ir::{lexer::lex_recovering, span::FileId, token::TokenKind};
/// let (toks, errs) = lex_recovering(FileId(0), "int x = \"oops\nint y;");
/// assert_eq!(errs.len(), 1);
/// assert!(toks.iter().any(|t| matches!(t.kind, TokenKind::Error)));
/// // Lexing resumed on the next line:
/// assert!(toks.iter().any(|t| matches!(&t.kind, TokenKind::Ident(s) if s == "y")));
/// ```
pub fn lex_recovering(file: FileId, src: &str) -> (Vec<Token>, Vec<LexError>) {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        file,
    };
    let mut out = Vec::new();
    let mut errors = Vec::new();
    loop {
        let before = lx.pos;
        match lx.next_token() {
            Ok(tok) => {
                let done = matches!(tok.kind, TokenKind::Eof);
                out.push(tok);
                if done {
                    return (out, errors);
                }
            }
            Err(e) => {
                let start = e.span.start;
                errors.push(e);
                // Guarantee progress even for a zero-consumption error.
                if lx.pos == before {
                    lx.bump();
                }
                out.push(Token {
                    kind: TokenKind::Error,
                    span: Span {
                        file,
                        start,
                        end: lx.here(),
                    },
                });
            }
        }
    }
}

impl<'a> Lexer<'a> {
    fn here(&self) -> LineCol {
        LineCol::new(self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn error(&self, start: LineCol, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            span: Span {
                file: self.file,
                start,
                end: self.here(),
            },
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if (c as char).is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.here();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            None => return Err(self.error(start, "unterminated block comment")),
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_trivia()?;
        let start = self.here();
        let Some(c) = self.peek() else {
            return Ok(self.token(start, TokenKind::Eof));
        };
        match c {
            b'#' => self.lex_directive(start),
            b'"' => self.lex_string(start),
            b'\'' => self.lex_char(start),
            b'0'..=b'9' => self.lex_number(start),
            c if c == b'_' || (c as char).is_ascii_alphabetic() => self.lex_ident(start),
            b'[' if self.peek2() == Some(b'[') => self.lex_bracket_attr(start),
            _ => self.lex_operator(start),
        }
    }

    fn token(&self, start: LineCol, kind: TokenKind) -> Token {
        Token {
            kind,
            span: Span {
                file: self.file,
                start,
                end: self.here(),
            },
        }
    }

    fn lex_directive(&mut self, start: LineCol) -> Result<Token, LexError> {
        // Consume to end of line; directives are line-oriented.
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == b'\n' {
                break;
            }
            text.push(self.bump().expect("peeked") as char);
        }
        let mut parts = text.split_whitespace();
        let head = parts.next().unwrap_or("");
        let arg = parts.next().unwrap_or("").to_string();
        let kind = match head {
            "#if" | "#ifdef" => {
                if arg.is_empty() {
                    return Err(self.error(start, "missing guard symbol after #if"));
                }
                TokenKind::HashIf(arg)
            }
            "#ifndef" => {
                if arg.is_empty() {
                    return Err(self.error(start, "missing guard symbol after #ifndef"));
                }
                TokenKind::HashIfNot(arg)
            }
            "#else" => TokenKind::HashElse,
            "#endif" => TokenKind::HashEndif,
            other => return Err(self.error(start, format!("unsupported directive `{other}`"))),
        };
        Ok(self.token(start, kind))
    }

    fn lex_string(&mut self, start: LineCol) -> Result<Token, LexError> {
        self.bump(); // Opening quote.
        let mut s = String::new();
        loop {
            match self.peek() {
                // A raw newline cannot appear in a MiniC string; leaving it
                // unconsumed lets `lex_recovering` resume on the next line.
                None | Some(b'\n') => return Err(self.error(start, "unterminated string literal")),
                Some(b'"') => {
                    self.bump();
                    break;
                }
                Some(b'\\') => {
                    self.bump();
                    let esc = self
                        .bump()
                        .ok_or_else(|| self.error(start, "unterminated escape"))?;
                    s.push(unescape(esc) as char);
                }
                Some(c) => {
                    self.bump();
                    s.push(c as char);
                }
            }
        }
        Ok(self.token(start, TokenKind::Str(s)))
    }

    fn lex_char(&mut self, start: LineCol) -> Result<Token, LexError> {
        self.bump(); // Opening quote.
        let c = match self.bump() {
            None => return Err(self.error(start, "unterminated char literal")),
            Some(b'\\') => {
                let esc = self
                    .bump()
                    .ok_or_else(|| self.error(start, "unterminated escape"))?;
                unescape(esc)
            }
            Some(c) => c,
        };
        if self.bump() != Some(b'\'') {
            return Err(self.error(start, "char literal must be a single character"));
        }
        Ok(self.token(start, TokenKind::Int(c as i64)))
    }

    fn lex_number(&mut self, start: LineCol) -> Result<Token, LexError> {
        let mut text = String::new();
        let hex = self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X'));
        if hex {
            self.bump();
            self.bump();
        }
        while let Some(c) = self.peek() {
            if (c as char).is_ascii_alphanumeric() || c == b'_' {
                text.push(self.bump().expect("peeked") as char);
            } else {
                break;
            }
        }
        // Strip C suffixes (u, l, ul, ull...).
        let digits = text.trim_end_matches(['u', 'U', 'l', 'L']);
        let radix = if hex { 16 } else { 10 };
        let value = i64::from_str_radix(digits, radix)
            .map_err(|_| self.error(start, format!("invalid integer literal `{text}`")))?;
        Ok(self.token(start, TokenKind::Int(value)))
    }

    fn lex_ident(&mut self, start: LineCol) -> Result<Token, LexError> {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == b'_' || (c as char).is_ascii_alphanumeric() {
                text.push(self.bump().expect("peeked") as char);
            } else {
                break;
            }
        }
        if text == "__attribute__" {
            return self.lex_gnu_attr(start);
        }
        let kind = TokenKind::keyword(&text).unwrap_or(TokenKind::Ident(text));
        Ok(self.token(start, kind))
    }

    /// Lexes `__attribute__((unused))` (the identifier part is consumed).
    fn lex_gnu_attr(&mut self, start: LineCol) -> Result<Token, LexError> {
        self.skip_trivia()?;
        let mut inner = String::new();
        let mut depth = 0usize;
        loop {
            match self.peek() {
                None => return Err(self.error(start, "unterminated __attribute__")),
                Some(b'(') => {
                    depth += 1;
                    self.bump();
                }
                Some(b')') => {
                    self.bump();
                    depth = depth
                        .checked_sub(1)
                        .ok_or_else(|| self.error(start, "unbalanced __attribute__"))?;
                    if depth == 0 {
                        break;
                    }
                }
                Some(c) => {
                    inner.push(c as char);
                    self.bump();
                }
            }
        }
        if inner.contains("unused") {
            Ok(self.token(start, TokenKind::AttrUnused))
        } else {
            Err(self.error(start, format!("unsupported attribute `{inner}`")))
        }
    }

    /// Lexes `[[maybe_unused]]`-style attributes.
    fn lex_bracket_attr(&mut self, start: LineCol) -> Result<Token, LexError> {
        self.bump();
        self.bump();
        let mut inner = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error(start, "unterminated [[attribute]]")),
                Some(b']') if self.peek2() == Some(b']') => {
                    self.bump();
                    self.bump();
                    break;
                }
                Some(c) => {
                    inner.push(c as char);
                    self.bump();
                }
            }
        }
        if inner.contains("unused") {
            Ok(self.token(start, TokenKind::AttrUnused))
        } else {
            Err(self.error(start, format!("unsupported attribute `{inner}`")))
        }
    }

    fn lex_operator(&mut self, start: LineCol) -> Result<Token, LexError> {
        use TokenKind::*;
        let c = self.bump().expect("caller checked peek");
        let next = self.peek();
        let two = |lx: &mut Self, kind: TokenKind| {
            lx.bump();
            kind
        };
        let kind = match (c, next) {
            (b'(', _) => LParen,
            (b')', _) => RParen,
            (b'{', _) => LBrace,
            (b'}', _) => RBrace,
            (b'[', _) => LBracket,
            (b']', _) => RBracket,
            (b';', _) => Semi,
            (b',', _) => Comma,
            (b'.', _) => Dot,
            (b'?', _) => Question,
            (b':', _) => Colon,
            (b'~', _) => Tilde,
            (b'&', Some(b'&')) => two(self, AmpAmp),
            (b'&', Some(b'=')) => two(self, AmpEq),
            (b'&', _) => Amp,
            (b'|', Some(b'|')) => two(self, PipePipe),
            (b'|', Some(b'=')) => two(self, PipeEq),
            (b'|', _) => Pipe,
            (b'^', Some(b'=')) => two(self, CaretEq),
            (b'^', _) => Caret,
            (b'!', Some(b'=')) => two(self, BangEq),
            (b'!', _) => Bang,
            (b'+', Some(b'+')) => two(self, PlusPlus),
            (b'+', Some(b'=')) => two(self, PlusEq),
            (b'+', _) => Plus,
            (b'-', Some(b'-')) => two(self, MinusMinus),
            (b'-', Some(b'=')) => two(self, MinusEq),
            (b'-', Some(b'>')) => two(self, Arrow),
            (b'-', _) => Minus,
            (b'*', Some(b'=')) => two(self, StarEq),
            (b'*', _) => Star,
            (b'/', Some(b'=')) => two(self, SlashEq),
            (b'/', _) => Slash,
            (b'%', Some(b'=')) => two(self, PercentEq),
            (b'%', _) => Percent,
            (b'<', Some(b'<')) => two(self, Shl),
            (b'<', Some(b'=')) => two(self, LtEq),
            (b'<', _) => Lt,
            (b'>', Some(b'>')) => two(self, Shr),
            (b'>', Some(b'=')) => two(self, GtEq),
            (b'>', _) => Gt,
            (b'=', Some(b'=')) => two(self, EqEq),
            (b'=', _) => Eq,
            (c, _) => {
                return Err(self.error(start, format!("unexpected character `{}`", c as char)))
            }
        };
        Ok(self.token(start, kind))
    }
}

fn unescape(c: u8) -> u8 {
    match c {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        b'0' => 0,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(FileId(0), src)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_simple_declaration() {
        use TokenKind::*;
        assert_eq!(
            kinds("int x = 42;"),
            vec![KwInt, Ident("x".into()), Eq, Int(42), Semi, Eof]
        );
    }

    #[test]
    fn lexes_hex_and_suffixed_literals() {
        use TokenKind::*;
        assert_eq!(kinds("0x10 10UL"), vec![Int(16), Int(10), Eof]);
    }

    #[test]
    fn lexes_char_literal_as_int() {
        use TokenKind::*;
        assert_eq!(kinds("'a' '\\0'"), vec![Int(97), Int(0), Eof]);
    }

    #[test]
    fn lexes_two_char_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("++ -- -> <= >= == != && || += <<"),
            vec![
                PlusPlus, MinusMinus, Arrow, LtEq, GtEq, EqEq, BangEq, AmpAmp, PipePipe, PlusEq,
                Shl, Eof
            ]
        );
    }

    #[test]
    fn skips_line_and_block_comments() {
        use TokenKind::*;
        assert_eq!(
            kinds("/* a */ x // b\n y"),
            vec![Ident("x".into()), Ident("y".into()), Eof]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex(FileId(0), "a\nb\n  c").unwrap();
        assert_eq!(toks[0].span.start.line, 1);
        assert_eq!(toks[1].span.start.line, 2);
        assert_eq!(toks[2].span.start.line, 3);
        assert_eq!(toks[2].span.start.col, 3);
    }

    #[test]
    fn lexes_preprocessor_directives() {
        use TokenKind::*;
        assert_eq!(
            kinds("#ifdef USE_ICMP\nx\n#else\n#endif"),
            vec![
                HashIf("USE_ICMP".into()),
                Ident("x".into()),
                HashElse,
                HashEndif,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_unused_attributes() {
        use TokenKind::*;
        assert_eq!(kinds("[[maybe_unused]]"), vec![AttrUnused, Eof]);
        assert_eq!(kinds("__attribute__((unused))"), vec![AttrUnused, Eof]);
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex(FileId(0), "\"abc").is_err());
    }

    #[test]
    fn rejects_unknown_directive() {
        assert!(lex(FileId(0), "#include <stdio.h>").is_err());
    }

    #[test]
    fn recovering_collects_every_error_and_keeps_lexing() {
        let (toks, errs) = lex_recovering(FileId(0), "int a;\n@@ $$\n#include <x>\nint b;\n");
        // `@`, `$` twice each plus the unsupported directive.
        assert_eq!(errs.len(), 5);
        let idents: Vec<_> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["a", "b"]);
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t.kind, TokenKind::Error))
                .count(),
            5
        );
    }

    #[test]
    fn recovering_unterminated_string_resumes_next_line() {
        let (toks, errs) = lex_recovering(FileId(0), "log(\"oops;\nint keep = 1;\n");
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("unterminated string"));
        assert!(toks
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::Ident(s) if s == "keep")));
    }

    #[test]
    fn recovering_matches_strict_lex_on_clean_input() {
        let src = "int f(void) { return 0x10; } /* c */ #ifdef A\n#endif";
        let strict = lex(FileId(0), src).unwrap();
        let (toks, errs) = lex_recovering(FileId(0), src);
        assert!(errs.is_empty());
        assert_eq!(strict.len(), toks.len());
        for (a, b) in strict.iter().zip(&toks) {
            assert_eq!(a.kind, b.kind);
        }
    }

    #[test]
    fn string_escapes() {
        let toks = lex(FileId(0), r#""a\n\t""#).unwrap();
        match &toks[0].kind {
            TokenKind::Str(s) => assert_eq!(s, "a\n\t"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
