//! # valuecheck-repro — reproduction of *Effective Bug Detection with
//! # Unused Definitions* (EuroSys '24)
//!
//! This facade crate re-exports the workspace members and hosts the runnable
//! examples and cross-crate integration tests:
//!
//! - [`vc_ir`] — MiniC frontend and load/store IR (the LLVM substitute);
//! - [`vc_dataflow`] — worklist dataflow framework and liveness;
//! - [`vc_pointer`] — field-sensitive Andersen's analysis (the SVF
//!   substitute);
//! - [`vc_vcs`] — in-memory version control with blame (the git substitute);
//! - [`vc_familiarity`] — DOK/EA code-familiarity models;
//! - [`valuecheck`] — the paper's contribution: cross-scope unused-definition
//!   detection, pruning, and familiarity ranking;
//! - [`vc_baselines`] — the Table 5 comparison tools;
//! - [`vc_workload`] — calibrated synthetic applications with ground truth.
//!
//! # Examples
//!
//! ```
//! use valuecheck::pipeline::{run, Options};
//! use vc_ir::Program;
//! use vc_vcs::{FileWrite, Repository};
//!
//! let src = "void f(void) {\nint x = 1;\nx = 2;\nuse(x);\n}\n";
//! let prog = Program::build(&[("a.c", src)], &[]).unwrap();
//! let mut repo = Repository::new();
//! let alice = repo.add_author("alice");
//! let bob = repo.add_author("bob");
//! repo.commit(alice, 1, "init", vec![FileWrite { path: "a.c".into(), content: src.into() }]);
//! repo.commit(bob, 2, "rework", vec![FileWrite {
//!     path: "a.c".into(),
//!     content: src.replace("x = 2;", "x = 2; "),
//! }]);
//! let analysis = run(&prog, &repo, &Options::paper());
//! assert_eq!(analysis.detected(), 1);
//! ```

pub use valuecheck;
pub use vc_baselines;
pub use vc_dataflow;
pub use vc_familiarity;
pub use vc_ir;
pub use vc_pointer;
pub use vc_vcs;
pub use vc_workload;
