//! Incremental (per-commit) analysis, as in a CI hook (§8.6).
//!
//! Generates a small synthetic application with a full commit history and
//! replays the most recent commits through `analyze_commit`, printing the
//! findings each commit introduces and the per-commit analysis time — the
//! integration mode the paper measures in Table 7's last column.
//!
//! ```sh
//! cargo run --release --example incremental_ci
//! ```

use std::time::Instant;

use valuecheck::{
    incremental::{
        analyze_commit_cached,
        SnapshotCache, //
    },
    prune::PruneConfig,
    rank::RankConfig,
};
use vc_obs::ObsSession;
use vc_workload::{
    generate,
    AppProfile, //
};

fn main() {
    let profile = AppProfile::openssl().scaled(0.25);
    let app = generate(&profile);
    println!(
        "generated `{}`: {} files, {} LOC, {} commits",
        profile.name,
        app.sources.len(),
        app.loc(),
        app.repo.commits().len()
    );

    // Replay the last 10 commits as a CI gate would.
    let commits: Vec<_> = app
        .repo
        .commits()
        .iter()
        .rev()
        .take(10)
        .map(|c| (c.id, c.author, c.message.clone()))
        .collect();

    let obs = ObsSession::new();
    let _guard = obs.install();
    let mut cache = SnapshotCache::new();
    let mut total = 0.0f64;
    for (id, author, message) in commits.iter().rev() {
        let t0 = Instant::now();
        let findings = analyze_commit_cached(
            &mut cache,
            &app.repo,
            *id,
            &app.defines,
            &PruneConfig::default(),
            &RankConfig::default(),
        )
        .expect("snapshot builds");
        let dt = t0.elapsed().as_secs_f64();
        total += dt;
        println!(
            "commit #{:<4} by {:<22} {:<40} functions analysed: {:>3}  findings: {}  ({:.3}s)",
            id.0,
            app.repo.author(*author).name,
            truncate(message, 38),
            findings.analysed_functions,
            findings.findings.len(),
            dt
        );
        for f in &findings.findings {
            println!(
                "    -> {} `{}` in {} (cross-scope unused definition)",
                f.item.candidate.func_name,
                f.item.candidate.var_name,
                findings.changed_files.join(", ")
            );
        }
    }
    println!(
        "average per-commit analysis time: {:.3}s",
        total / commits.len() as f64
    );
    println!(
        "snapshot cache: {} hits, {} misses; {} functions analysed in total",
        obs.registry.counter("incremental.cache.hits"),
        obs.registry.counter("incremental.cache.misses"),
        obs.registry.counter("incremental.functions_analysed"),
    );
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n])
    }
}
