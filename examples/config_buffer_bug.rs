//! The paper's Figure 1b: the overwritten `bufsz` configuration bug.
//!
//! `logfile_mod_open` receives the user's 'logging buffer size' but
//! immediately overwrites it with 1400, so configuring a zero buffer (flush
//! immediately) silently has no effect. The caller and the function body
//! were written by different developers — a scenario-2 cross-scope unused
//! definition (overwritten function argument).
//!
//! ```sh
//! cargo run --example config_buffer_bug
//! ```

use valuecheck::{
    pipeline::{
        run,
        Options, //
    },
    Scenario,
};
use vc_ir::Program;
use vc_vcs::{
    FileWrite,
    Repository, //
};

fn main() {
    // Author 2 implements the log module (and overwrites bufsz).
    let logfile = "\
void setup_buffer(char *path, size_t n);

int logfile_mod_open(char *path, size_t bufsz) {
  bufsz = 1400;
  if (bufsz > 0) {
    setup_buffer(path, bufsz);
  }
  return 0;
}
";
    // Author 1 calls it with the configured size (0 = unbuffered).
    let caller = "\
int logfile_mod_open(char *path, size_t bufsz);
void keep_handle(int h);

void init_logging(void) {
  int h = logfile_mod_open(\"headers.log\", 0);
  keep_handle(h);
}
";

    let mut repo = Repository::new();
    let author1 = repo.add_author("author1");
    let author2 = repo.add_author("author2");
    repo.commit(
        author2,
        1_450_000_000,
        "implement logfile module",
        vec![FileWrite {
            path: "logfile.c".into(),
            content: logfile.into(),
        }],
    );
    repo.commit(
        author1,
        1_500_000_000,
        "wire header logging",
        vec![FileWrite {
            path: "main.c".into(),
            content: caller.into(),
        }],
    );

    let prog =
        Program::build(&[("logfile.c", logfile), ("main.c", caller)], &[]).expect("program builds");
    let analysis = run(&prog, &repo, &Options::paper());

    let finding = analysis
        .ranked
        .iter()
        .find(|r| r.item.candidate.var_name == "bufsz")
        .expect("bufsz reported");
    let cand = &finding.item.candidate;
    assert!(matches!(cand.scenario, Scenario::Param { index: 1 }));
    assert!(finding.item.cross_scope);
    println!(
        "ValueCheck: parameter `bufsz` of logfile_mod_open is overwritten before use \
         (scenario: overwritten argument).\n\
         The call site passes 0 ('flush immediately') and is authored by a different \
         developer, so the configuration silently has no effect: a cross-scope bug."
    );
    println!();
    print!("{}", analysis.report.to_csv());
}
