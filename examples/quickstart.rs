//! Quickstart: detect a cross-scope unused definition in a small project.
//!
//! Builds a two-file MiniC program with a two-author history, runs the full
//! ValueCheck pipeline (detection → authorship → pruning → DOK ranking) and
//! prints the ranked report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use valuecheck::pipeline::{
    run,
    Options, //
};
use vc_ir::Program;
use vc_vcs::{
    FileWrite,
    Repository, //
};

fn main() {
    // A project file as the maintainer originally wrote it.
    let v1 = "\
int read_config(char *path);
int apply_config(int cfg);

int reload(char *path) {
  int cfg = read_config(path);
  return apply_config(cfg);
}
";
    // A later contributor \"simplifies\" the reload path — and silently stops
    // using the value read from the configuration file.
    let v2 = "\
int read_config(char *path);
int apply_config(int cfg);

int reload(char *path) {
  int cfg = read_config(path);
  cfg = 0;
  return apply_config(cfg);
}
";

    // Record the history: the maintainer imports the file, the newcomer
    // edits it two years later.
    let mut repo = Repository::new();
    let maintainer = repo.add_author("maintainer");
    let newcomer = repo.add_author("newcomer");
    repo.commit(
        maintainer,
        1_500_000_000,
        "import config reload",
        vec![FileWrite {
            path: "reload.c".into(),
            content: v1.into(),
        }],
    );
    repo.commit(
        newcomer,
        1_560_000_000,
        "simplify reload",
        vec![FileWrite {
            path: "reload.c".into(),
            content: v2.into(),
        }],
    );

    // Compile the current tree and run the pipeline.
    let prog = Program::build(&[("reload.c", v2)], &[]).expect("program builds");
    let analysis = run(&prog, &repo, &Options::paper());

    println!(
        "raw unused definitions: {}, cross-scope: {}, pruned: {}, reported: {}",
        analysis.raw_candidates,
        analysis.cross_scope_candidates,
        analysis.prune_outcome.total_pruned(),
        analysis.detected()
    );
    println!();
    print!("{}", analysis.report.to_csv());

    assert_eq!(
        analysis.detected(),
        1,
        "the overwritten cfg must be reported"
    );
    let row = &analysis.report.rows[0];
    assert_eq!(row.variable, "cfg");
    assert_eq!(row.author.as_deref(), Some("newcomer"));
    println!("\nThe dead `cfg = read_config(path)` is flagged, attributed to the newcomer.");
}
