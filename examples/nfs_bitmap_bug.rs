//! The paper's Figure 1a: the NFS-ganesha bitmap-conversion bug.
//!
//! `bitmap4_to_attrmask_t` fetches the first attribute from the source
//! bitmap, then a later author's `for` loop overwrites it before anyone
//! reads it — so the first file attribute (e.g. ownership) is silently
//! dropped from the destination mask: a security bug.
//!
//! This example reconstructs the two-author history, shows that the
//! flow-sensitive detector finds the overwritten definition even though
//! `attr` *is* referenced later (which silences AST-based tools), and that
//! the authorship phase classifies it as cross-scope.
//!
//! ```sh
//! cargo run --example nfs_bitmap_bug
//! ```

use valuecheck::{
    pipeline::{
        run,
        Options, //
    },
    Scenario,
};
use vc_baselines::clang_unused;
use vc_ir::{
    parser::parse,
    FileId,
    Program, //
};
use vc_vcs::{
    FileWrite,
    Repository, //
};

fn main() {
    // Author 1's original conversion: fetch attributes one by one.
    let v1 = "\
int next_attr_from_bitmap(int *bm);
void set_mask_bit(int *mask, int attr);

int bitmap4_to_attrmask_t(int *bm, int *mask) {
  int attr = next_attr_from_bitmap(bm);
  while (attr != -1) {
    set_mask_bit(mask, attr);
    attr = next_attr_from_bitmap(bm);
  }
  return 0;
}
";
    // Author 2 rewrites the loop as a `for` — whose init expression fetches
    // again, overwriting (and losing) the first attribute.
    let v2 = "\
int next_attr_from_bitmap(int *bm);
void set_mask_bit(int *mask, int attr);

int bitmap4_to_attrmask_t(int *bm, int *mask) {
  int attr = next_attr_from_bitmap(bm);
  for (attr = next_attr_from_bitmap(bm); attr != -1; attr = next_attr_from_bitmap(bm)) {
    set_mask_bit(mask, attr);
  }
  return 0;
}
";

    let mut repo = Repository::new();
    let author1 = repo.add_author("author1");
    let author2 = repo.add_author("author2");
    repo.commit(
        author1,
        1_400_000_000,
        "convert NFSv4 bitmap to FSAL mask",
        vec![FileWrite {
            path: "attrs.c".into(),
            content: v1.into(),
        }],
    );
    repo.commit(
        author2,
        1_520_000_000,
        "rewrite conversion loop as for()",
        vec![FileWrite {
            path: "attrs.c".into(),
            content: v2.into(),
        }],
    );

    let prog = Program::build(&[("attrs.c", v2)], &[]).expect("program builds");
    let analysis = run(&prog, &repo, &Options::paper());

    assert_eq!(analysis.detected(), 1);
    let finding = &analysis.ranked[0];
    let cand = &finding.item.candidate;
    assert_eq!(cand.var_name, "attr");
    assert!(matches!(cand.scenario, Scenario::RetVal { .. }));
    assert!(finding.item.cross_scope);
    println!(
        "ValueCheck: `{}` at {}:{} is an unused definition, overwritten at line {} \
         (definition author {:?}, overwriter cross-scope: {})",
        cand.var_name,
        analysis.report.rows[0].file,
        cand.span.line(),
        cand.overwriters[0].line(),
        finding.item.def_author.map(|a| repo.author(a).name.clone()),
        finding.item.cross_scope,
    );

    // Clang-style AST walking stays silent: `attr` is referenced, so it is
    // "used" (the precision gap the paper's §8.4.1 describes).
    let module = parse(FileId(0), v2).expect("parses");
    let clang = clang_unused(&[("attrs.c".to_string(), module)]);
    assert!(clang.is_empty());
    println!(
        "Clang -Wunused: silent ({} findings) — attr is referenced later.",
        clang.len()
    );
}
